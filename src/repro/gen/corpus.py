"""Reproducer corpus: pinned fuzz cases with bit-exact expectations.

A corpus entry is a directory holding the case's canonical artifact
(``case.deck`` for device families, ``case.net`` for logic) next to a
``record.json`` with everything needed to re-run the differential
check bit-for-bit: the draw coordinates and parameters, the
replica/tolerance/bug settings the verdict was produced under, every
oracle curve with currents in ``float.hex`` (like the existing golden
corpus), and the folded MC event-stream hash.

:func:`replay` re-runs the case from the artifact and reports any
divergence — a replayed entry must reproduce the recorded verdict
kind, every oracle current to the bit, and the event hash.  Promoted
entries live under ``tests/data/golden/fuzz/`` where the golden-corpus
test replays them on every CI run, which is what turns a one-time fuzz
finding into a permanent regression gate.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
from pathlib import Path
from typing import Iterator

from repro.errors import GeneratorError
from repro.gen.circuits import GeneratedCase
from repro.gen.differential import CaseVerdict, Tolerance, run_case

__all__ = [
    "ReplayDivergence",
    "iter_corpus",
    "load_case",
    "promote",
    "replay",
    "write_case",
]

_RECORD = "record.json"


@dataclasses.dataclass(frozen=True)
class ReplayDivergence:
    """One way a replayed entry failed to reproduce its record."""

    entry: str
    what: str


def _artifact_name(family: str) -> str:
    return "case.net" if family == "logic" else "case.deck"


def write_case(
    directory: Path | str,
    case: GeneratedCase,
    verdict: CaseVerdict,
    *,
    replicas: int,
    tolerance: Tolerance,
    bug: str | None = None,
    shrink_steps: tuple[str, ...] = (),
) -> Path:
    """Write one corpus entry; returns the entry directory."""
    entry = Path(directory) / case.name
    entry.mkdir(parents=True, exist_ok=True)
    artifact = _artifact_name(case.family)
    (entry / artifact).write_text(case.deck_text)
    record = {
        "name": case.name,
        "family": case.family,
        "root_seed": case.root_seed,
        "index": case.index,
        "artifact": artifact,
        "params": dict(case.params),
        "derived": dict(case.derived),
        "replicas": replicas,
        "tolerance": dataclasses.asdict(tolerance),
        "bug": bug,
        "verdict": verdict.kind,
        "lint_findings": list(verdict.lint_findings),
        "shrink_steps": list(shrink_steps),
        "voltages": [float(v).hex() for v in verdict.voltages],
        "oracles": {
            oracle.name: {
                "currents": [float(c).hex() for c in oracle.currents],
                "sems": [float(s).hex() for s in oracle.sems],
            }
            for oracle in verdict.oracles
        },
        "event_hash": verdict.event_hash,
    }
    (entry / _RECORD).write_text(json.dumps(record, indent=2) + "\n")
    return entry


def load_case(entry: Path | str) -> tuple[GeneratedCase, dict]:
    """Reconstruct the generated case and its record from an entry."""
    entry = Path(entry)
    record_path = entry / _RECORD
    if not record_path.is_file():
        raise GeneratorError(f"{entry}: not a corpus entry (no {_RECORD})")
    record = json.loads(record_path.read_text())
    artifact = entry / record["artifact"]
    if not artifact.is_file():
        raise GeneratorError(f"{entry}: missing artifact {record['artifact']}")
    case = GeneratedCase(
        name=record["name"],
        family=record["family"],
        index=int(record["index"]),
        root_seed=int(record["root_seed"]),
        params=dict(record["params"]),
        derived=dict(record["derived"]),
        deck_text=artifact.read_text(),
    )
    return case, record


def iter_corpus(directory: Path | str) -> Iterator[Path]:
    """Entry directories under ``directory``, sorted by name."""
    root = Path(directory)
    if not root.is_dir():
        return
    for child in sorted(root.iterdir()):
        if child.is_dir() and (child / _RECORD).is_file():
            yield child


def replay(entry: Path | str) -> tuple[CaseVerdict, list[ReplayDivergence]]:
    """Re-run a corpus entry and diff it against its pinned record.

    Returns the fresh verdict plus every divergence found; an empty
    divergence list means the entry reproduced bit-for-bit.
    """
    entry = Path(entry)
    case, record = load_case(entry)
    verdict = run_case(
        case,
        replicas=int(record["replicas"]),
        tolerance=Tolerance(**record["tolerance"]),
        bug=record["bug"],
    )
    divergences: list[ReplayDivergence] = []

    def diverged(what: str) -> None:
        divergences.append(ReplayDivergence(entry.name, what))

    if verdict.kind != record["verdict"]:
        diverged(f"verdict {verdict.kind!r} != pinned {record['verdict']!r}")
    pinned_voltages = [float.fromhex(v) for v in record["voltages"]]
    # bit-exact on purpose: replay promises bitwise reproduction
    if list(verdict.voltages) != pinned_voltages:  # repro: allow[REPRO003]
        diverged("sweep voltages changed")
    pinned_oracles = record["oracles"]
    fresh = {o.name: o for o in verdict.oracles}
    if sorted(fresh) != sorted(pinned_oracles):
        diverged(
            f"oracle set {sorted(fresh)} != pinned {sorted(pinned_oracles)}"
        )
    for name in sorted(set(fresh) & set(pinned_oracles)):
        pinned = [float.fromhex(c) for c in pinned_oracles[name]["currents"]]
        if list(fresh[name].currents) != pinned:
            diverged(f"oracle {name!r} currents changed")
    if verdict.event_hash != record["event_hash"]:
        diverged(
            f"event hash {verdict.event_hash!r} != "
            f"pinned {record['event_hash']!r}"
        )
    return verdict, divergences


def promote(
    source: Path | str,
    destination: Path | str,
    names: tuple[str, ...] | None = None,
) -> list[Path]:
    """Copy corpus entries into the pinned (golden) corpus.

    ``names=None`` promotes every entry; otherwise only the named
    ones.  Promotion overwrites an existing pinned entry of the same
    name — refreshing a pin is an explicit, reviewable act.
    """
    wanted = set(names) if names is not None else None
    promoted: list[Path] = []
    for entry in iter_corpus(source):
        if wanted is not None and entry.name not in wanted:
            continue
        target = Path(destination) / entry.name
        if target.exists():
            shutil.rmtree(target)
        shutil.copytree(entry, target)
        promoted.append(target)
    missing = (wanted or set()) - {p.name for p in promoted}
    if missing:
        raise GeneratorError(
            f"corpus promote: no such entr{'y' if len(missing) == 1 else 'ies'} "
            f"{sorted(missing)} under {source}"
        )
    return promoted
