"""Random logic-netlist family for the differential fuzzer.

The ``logic`` family draws combinational nSET/pSET gate netlists with
controlled input-count, gate-count and fanout distributions, rendered
to the text front-end format (:mod:`repro.netlist.logic_text`) so the
reproducer *is* a parseable netlist file.  Its differential oracle is
structural, not statistical: the technology-mapping pass
(:func:`repro.logic.mapping.decompose`) must preserve the logic
function on random input vectors, and both the drawn netlist and its
primitive-gate decomposition must pass the logic lint pass clean.

Construction guarantees well-formedness by design (every gate reads
only already-driven nets, so the netlist is a DAG with no multi-driver
nets; every net nobody consumes is declared a primary output) — a draw
that still fails lint is precisely the generator bug the fuzzer
exists to catch.
"""

from __future__ import annotations

import numpy as np

from repro.gen.circuits import GeneratedCase, case_name
from repro.gen.spaces import Choice, IntRange, ParamSpace
from repro.logic.netlist import ARITY, Gate, GateKind, LogicNetlist
from repro.netlist.logic_text import write_logic
from repro.parallel.seeds import spawn_seed_at

__all__ = [
    "LOGIC_SPACE",
    "build_logic_netlist",
    "draw_logic_case",
    "generate_logic_case",
]

#: gate-kind pools per mix regime
_KIND_POOLS: dict[str, tuple[GateKind, ...]] = {
    # the physical target library only
    "primitive": (GateKind.INV, GateKind.NAND2, GateKind.NOR2),
    # every 2-input cell plus inverters
    "mixed": (
        GateKind.INV,
        GateKind.BUF,
        GateKind.NAND2,
        GateKind.NOR2,
        GateKind.AND2,
        GateKind.OR2,
        GateKind.XOR2,
        GateKind.XNOR2,
    ),
    # include the wide cells the mapper has to decompose
    "wide": (
        GateKind.INV,
        GateKind.NAND2,
        GateKind.NOR2,
        GateKind.AND3,
        GateKind.OR3,
        GateKind.NAND3,
        GateKind.NOR3,
        GateKind.AND4,
        GateKind.OR4,
        GateKind.NAND4,
    ),
}

LOGIC_SPACE = ParamSpace(
    {
        "n_inputs": IntRange(2, 5),
        "n_gates": IntRange(3, 12),
        "max_fanout": IntRange(2, 4),
        "kind_mix": Choice(("primitive", "mixed", "wide"), weights=(2.0, 2.0, 1.0)),
        "n_vectors": IntRange(8, 16),
    }
)


def build_logic_netlist(
    name: str,
    rng: np.random.Generator,
    *,
    n_inputs: int,
    n_gates: int,
    max_fanout: int,
    kind_mix: str,
) -> LogicNetlist:
    """Draw one well-formed combinational netlist.

    The scalar knobs come from :data:`LOGIC_SPACE`; the *structure*
    (gate kinds and wiring) is drawn from ``rng`` gate by gate.  Each
    gate reads nets that already exist, preferring nets nobody has
    read yet, then nets under the fanout cap, then a repeat of a net
    the gate already reads (which adds no fanout) — so
    ``len(fanout_of(net)) <= max_fanout`` holds for every net,
    unconditionally.  Fanout counts *consuming gates*, matching
    :meth:`repro.logic.netlist.LogicNetlist.fanout_of`: a net wired
    into two slots of one gate is fanout 1, not 2.
    """
    inputs = [f"a{i}" for i in range(1, n_inputs + 1)]
    pool = Choice(tuple(k.value for k in _KIND_POOLS[kind_mix]))
    nets: list[str] = list(inputs)
    consumers: dict[str, int] = {net: 0 for net in nets}
    gates: list[Gate] = []
    for g in range(n_gates):
        kind = GateKind(pool.draw(rng))
        arity = ARITY[kind]
        chosen: list[str] = []
        for _slot in range(arity):
            # the previous gate's output (or, at g=0, every primary
            # input) is always unconsumed, so `unused` is never empty
            # on the first slot and `chosen` covers the rest
            unused = [n for n in nets if consumers[n] == 0 and n not in chosen]
            light = [
                n
                for n in nets
                if consumers[n] < max_fanout and n not in chosen
            ]
            candidates = unused or light or chosen
            chosen.append(candidates[int(rng.integers(len(candidates)))])
        for net in dict.fromkeys(chosen):  # distinct, in wiring order
            consumers[net] += 1
        out = f"n{g + 1}"
        gates.append(Gate(f"g{g + 1}", kind, tuple(chosen), out))
        nets.append(out)
        consumers[out] = 0
    outputs = [g.output for g in gates if consumers[g.output] == 0]
    return LogicNetlist(name, inputs, outputs, gates)


def draw_logic_case(
    rng: np.random.Generator, *, root_seed: int, index: int
) -> GeneratedCase:
    """Finish drawing a ``logic`` case from an already-spawned stream."""
    params = LOGIC_SPACE.draw(rng)
    name = case_name(root_seed, index, "logic")
    netlist = build_logic_netlist(
        name,
        rng,
        n_inputs=int(params["n_inputs"]),
        n_gates=int(params["n_gates"]),
        max_fanout=int(params["max_fanout"]),
        kind_mix=str(params["kind_mix"]),
    )
    return GeneratedCase(
        name=name,
        family="logic",
        index=index,
        root_seed=root_seed,
        params=params,
        derived={
            "n_outputs": float(len(netlist.outputs)),
            "max_observed_fanout": float(
                max(
                    (len(netlist.fanout_of(net)) for net in netlist.inputs),
                    default=0,
                )
            ),
        },
        deck_text=write_logic(netlist),
    )


def generate_logic_case(root_seed: int, index: int) -> GeneratedCase:
    """Draw a ``logic`` case directly (tests and corpus tooling)."""
    rng = np.random.default_rng(spawn_seed_at(root_seed, (index,)))
    return draw_logic_case(rng, root_seed=root_seed, index=index)
