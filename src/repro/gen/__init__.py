"""``repro.gen`` — scenario generation and differential fuzzing.

The scenario-diversity engine and standing correctness ratchet: a
seed-deterministic generator of SET circuits and logic netlists
(:mod:`~repro.gen.circuits`, :mod:`~repro.gen.netlists`) whose bounded
parameter spaces (:mod:`~repro.gen.spaces`) feed a differential driver
(:mod:`~repro.gen.differential`) cross-checking adaptive MC,
non-adaptive MC, the exact master equation and the SPICE compact
model; failures shrink to minimal reproducers
(:mod:`~repro.gen.shrink`) and pin into a replayable corpus
(:mod:`~repro.gen.corpus`).  :mod:`~repro.gen.fuzz` wires it all into
the campaign-cached, shard-pooled ``repro fuzz`` command.
"""

from __future__ import annotations

from repro.gen.circuits import (
    CIRCUIT_FAMILIES,
    DEFAULT_FAMILIES,
    FAMILY_SPACES,
    GeneratedCase,
    build_case,
    generate_case,
)
from repro.gen.corpus import iter_corpus, load_case, promote, replay, write_case
from repro.gen.differential import (
    CaseVerdict,
    Comparison,
    OracleCurve,
    PointCheck,
    Tolerance,
    run_case,
    seeded_bug,
)
from repro.gen.fuzz import (
    FuzzConfig,
    FuzzReport,
    generate_cases,
    run_fuzz,
    write_artifacts,
)
from repro.gen.netlists import LOGIC_SPACE, build_logic_netlist, generate_logic_case
from repro.gen.shrink import ShrinkResult, shrink_case
from repro.gen.spaces import (
    Choice,
    Distribution,
    IntRange,
    LogUniform,
    ParamSpace,
    Uniform,
)

__all__ = [
    "CIRCUIT_FAMILIES",
    "CaseVerdict",
    "Choice",
    "Comparison",
    "DEFAULT_FAMILIES",
    "Distribution",
    "FAMILY_SPACES",
    "FuzzConfig",
    "FuzzReport",
    "GeneratedCase",
    "IntRange",
    "LOGIC_SPACE",
    "LogUniform",
    "OracleCurve",
    "ParamSpace",
    "PointCheck",
    "ShrinkResult",
    "Tolerance",
    "Uniform",
    "build_case",
    "build_logic_netlist",
    "generate_case",
    "generate_cases",
    "generate_logic_case",
    "iter_corpus",
    "load_case",
    "promote",
    "replay",
    "run_case",
    "run_fuzz",
    "seeded_bug",
    "shrink_case",
    "write_artifacts",
    "write_case",
]
