"""SEMSIM reproduction: adaptive Monte Carlo simulation of
single-electron devices.

Reimplementation of *Adaptive Simulation for Single-Electron Devices*
(Allec, Knobel, Shang - DATE 2008).  The package provides:

* a Monte Carlo simulator for single-electron circuits with an
  **adaptive** rate-update algorithm (the paper's contribution) and the
  conventional non-adaptive baseline;
* orthodox-theory sequential tunneling, second-order inelastic
  cotunneling, and superconducting quasi-particle / Cooper-pair
  tunneling (JQP, DJQP and singularity-matching physics);
* a master-equation reference solver, a SPICE-style analytical
  baseline, a SEMSIM input-file parser, and an nSET/pSET logic
  synthesis front end with the paper's 15 benchmark circuits.

Quick start::

    from repro import build_set, MonteCarloEngine, SimulationConfig

    circuit = build_set(vs=+0.01, vd=-0.01, vg=0.0)
    engine = MonteCarloEngine(circuit, SimulationConfig(temperature=5.0))
    current = engine.measure_current([0], jumps=20000)
"""

from __future__ import annotations

from repro.circuit import (
    ChargeState,
    Circuit,
    CircuitBuilder,
    Electrostatics,
    Superconductor,
    build_junction_array,
    build_set,
)
from repro.core import (
    CurrentRecorder,
    EventKind,
    MonteCarloEngine,
    NodeVoltageRecorder,
    SimulationConfig,
    sweep_iv,
    sweep_map,
    sweep_master_iv,
    symmetric_bias,
)
from repro.errors import (
    CircuitError,
    ConvergenceError,
    FrozenCircuitError,
    LintError,
    NetlistError,
    PhysicsError,
    RecoveryError,
    SemsimError,
    SimulationError,
)
from repro.parallel import EnsembleIV, ensemble_iv
from repro.recovery import CheckpointStore, ExecutionPolicy

__version__ = "1.0.0"

__all__ = [
    "ChargeState",
    "CheckpointStore",
    "Circuit",
    "CircuitBuilder",
    "CircuitError",
    "ConvergenceError",
    "CurrentRecorder",
    "Electrostatics",
    "EnsembleIV",
    "EventKind",
    "ExecutionPolicy",
    "FrozenCircuitError",
    "LintError",
    "MonteCarloEngine",
    "NetlistError",
    "NodeVoltageRecorder",
    "PhysicsError",
    "RecoveryError",
    "SemsimError",
    "SimulationConfig",
    "SimulationError",
    "Superconductor",
    "build_junction_array",
    "build_set",
    "ensemble_iv",
    "sweep_iv",
    "sweep_map",
    "sweep_master_iv",
    "symmetric_bias",
    "__version__",
]
