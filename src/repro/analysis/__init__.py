"""Result analysis: metrics, timing, noise statistics, resonances."""

from __future__ import annotations

from repro.analysis.metrics import (
    crossover_index,
    mean_percent_error,
    percent_error,
    relative_spread,
)
from repro.analysis.iv_features import (
    BlockadeRegion,
    blockade_extent,
    differential_conductance,
    oscillation_period,
)
from repro.analysis.noise import CountingStatistics, fano_factor, windowed_counts
from repro.analysis.resonances import (
    AffineEnergy,
    affine_free_energy,
    blockade_threshold_bias,
    ground_state_occupation,
    jqp_resonance_biases,
    singularity_matching_bias,
    singularity_matching_biases,
)
from repro.analysis.tables import format_table
from repro.analysis.timing import TimedRun, measure_engine_run, time_call

__all__ = [
    "AffineEnergy",
    "BlockadeRegion",
    "CountingStatistics",
    "TimedRun",
    "affine_free_energy",
    "blockade_extent",
    "blockade_threshold_bias",
    "differential_conductance",
    "oscillation_period",
    "crossover_index",
    "fano_factor",
    "format_table",
    "ground_state_occupation",
    "jqp_resonance_biases",
    "singularity_matching_biases",
    "mean_percent_error",
    "measure_engine_run",
    "percent_error",
    "relative_spread",
    "singularity_matching_bias",
    "time_call",
    "windowed_counts",
]
