"""Analytic feature positions for single-electron I-V maps.

Fig. 5 of the paper overlays the measured map with *theoretical feature
positions*: the Coulomb threshold (dotted), the singularity-matching
line (dashed) and the JQP resonance line (solid).  This module computes
those positions for arbitrary circuits directly from the electrostatics:
every free-energy change is affine in any source voltage, so the bias
at which a channel opens (``dW = -offset``) follows from two
evaluations of Eq. 2.

These predictions are what the Fig. 5 bench checks its simulated ridges
against — the positions depend only on capacitances, charges and gaps,
not on any rate model.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.electrostatics import Electrostatics
from repro.constants import E_CHARGE
from repro.errors import SimulationError


@dataclasses.dataclass(frozen=True)
class AffineEnergy:
    """``dW(V) = offset + slope * V`` along a bias axis."""

    offset: float
    slope: float

    def bias_where(self, value: float) -> float:
        """Bias at which ``dW = value`` (raises for a flat channel)."""
        if self.slope == 0.0:
            raise SimulationError(
                "free energy does not depend on this bias axis"
            )
        return (value - self.offset) / self.slope


def _apply_bias(
    circuit: Circuit, bias_setter: Callable[[float], Mapping[str, float]],
    bias: float,
) -> np.ndarray:
    return circuit.with_source_voltages(
        dict(bias_setter(bias))
    ).external_voltages()


def affine_free_energy(
    circuit: Circuit,
    stat: Electrostatics,
    junction: int,
    bias_setter: Callable[[float], Mapping[str, float]],
    occupation: np.ndarray | None = None,
    direction: int = +1,
    dq: float = -E_CHARGE,
) -> AffineEnergy:
    """Free-energy change of a junction event as a function of a bias.

    ``bias_setter`` maps the scalar bias to source voltages (the same
    convention as :func:`repro.core.sweep_iv`); ``direction`` +1 moves
    ``dq`` from ``node_a`` to ``node_b``.
    """
    if occupation is None:
        occupation = np.zeros(circuit.n_islands, dtype=np.int64)
    rj = circuit.resolved_junctions()[junction]
    ref_a, ref_b = (rj.ref_a, rj.ref_b) if direction > 0 else (rj.ref_b, rj.ref_a)

    def dw_at(bias: float) -> float:
        vext = _apply_bias(circuit, bias_setter, bias)
        v = stat.potentials(occupation, vext)
        return stat.free_energy_change(ref_a, ref_b, v, vext, dq=dq)

    w0 = dw_at(0.0)
    w1 = dw_at(1e-3)
    return AffineEnergy(offset=w0, slope=(w1 - w0) / 1e-3)


def ground_state_occupation(
    circuit: Circuit,
    stat: Electrostatics,
    vext: np.ndarray | None = None,
    search_range: int = 2,
) -> np.ndarray:
    """Electrostatic ground-state occupation (exhaustive scan).

    Background charges move the ground state away from neutrality
    (Fig. 5's ``Qb = 0.65 e`` device sits in its ``n = 1`` valley), and
    feature positions must be computed from the state the device
    actually occupies.  Intended for few-island devices.
    """
    if vext is None:
        vext = circuit.external_voltages()
    n = circuit.n_islands
    if n > 4:
        raise SimulationError(
            "exhaustive ground-state search is for few-island devices"
        )
    import itertools

    best = None
    best_energy = None
    for combo in itertools.product(
        range(-search_range, search_range + 1), repeat=n
    ):
        occupation = np.array(combo, dtype=np.int64)
        energy = stat.total_free_energy(occupation, vext)
        if best_energy is None or energy < best_energy:
            best_energy = energy
            best = occupation
    return best


def blockade_threshold_bias(
    circuit: Circuit,
    stat: Electrostatics,
    bias_setter: Callable[[float], Mapping[str, float]],
    occupation: np.ndarray | None = None,
    gap_cost: float = 0.0,
) -> float:
    """Smallest positive bias at which *any* sequential channel opens
    out of the zero-bias ground state.

    ``gap_cost`` shifts the opening condition to ``dW = -gap_cost``
    (``2 Delta`` for a fully superconducting circuit — the dotted
    threshold line of Fig. 5 sits at the quasi-particle cost).
    """
    if occupation is None and circuit.n_islands <= 4:
        occupation = ground_state_occupation(circuit, stat)
    candidates = []
    for junction in range(circuit.n_junctions):
        for direction in (+1, -1):
            affine = affine_free_energy(
                circuit, stat, junction, bias_setter, occupation, direction
            )
            if affine.slope == 0.0:
                continue
            bias = affine.bias_where(-gap_cost)
            if bias > 0.0:
                candidates.append(bias)
    if not candidates:
        raise SimulationError("no channel opens at positive bias")
    return min(candidates)


def jqp_resonance_biases(
    circuit: Circuit,
    stat: Electrostatics,
    bias_setter: Callable[[float], Mapping[str, float]],
    occupations: list[np.ndarray] | None = None,
    max_bias: float | None = None,
) -> list[float]:
    """Bias positions where a Cooper-pair transfer is resonant.

    A JQP cycle ignites where the 2e free-energy change vanishes for
    some junction and accessible charge state; the solid lines of
    Fig. 5 are these positions as the gate shifts the offsets.
    """
    if occupations is None:
        occupations = [
            np.full(circuit.n_islands, n, dtype=np.int64) for n in (-2, -1, 0, 1, 2)
        ]
    biases: list[float] = []
    for occupation in occupations:
        for junction in range(circuit.n_junctions):
            for direction in (+1, -1):
                affine = affine_free_energy(
                    circuit, stat, junction, bias_setter, occupation,
                    direction, dq=-2.0 * E_CHARGE,
                )
                if affine.slope == 0.0:
                    continue
                bias = affine.bias_where(0.0)
                if bias > 0.0 and (max_bias is None or bias <= max_bias):
                    biases.append(bias)
    return sorted(set(round(b, 12) for b in biases))


def singularity_matching_bias(
    circuit: Circuit,
    stat: Electrostatics,
    bias_setter: Callable[[float], Mapping[str, float]],
    gap: float,
    occupation: np.ndarray | None = None,
) -> float:
    """Bias of the first singularity-matching feature.

    Thermally excited quasi-particles above one gap edge align with
    empty states above the other when the single-electron channel
    reaches ``dW = 0`` (the gap edges coincide); at finite temperature
    a current peak appears there, ``2 Delta`` *before* the full
    quasi-particle threshold [14, 17].
    """
    return blockade_threshold_bias(
        circuit, stat, bias_setter, occupation, gap_cost=0.0
    )


def singularity_matching_biases(
    circuit: Circuit,
    stat: Electrostatics,
    bias_setter: Callable[[float], Mapping[str, float]],
    occupations: list[np.ndarray] | None = None,
    max_bias: float | None = None,
) -> list[float]:
    """All gap-edge alignment positions (the dashed lines of Fig. 5).

    Like :func:`jqp_resonance_biases` but for the single-electron
    channel: each charge state and junction contributes a line where
    its quasi-particle ``dW`` crosses zero.
    """
    if occupations is None:
        occupations = [
            np.full(circuit.n_islands, n, dtype=np.int64) for n in (-2, -1, 0, 1, 2)
        ]
    biases: list[float] = []
    for occupation in occupations:
        for junction in range(circuit.n_junctions):
            for direction in (+1, -1):
                affine = affine_free_energy(
                    circuit, stat, junction, bias_setter, occupation,
                    direction, dq=-E_CHARGE,
                )
                if affine.slope == 0.0:
                    continue
                bias = affine.bias_where(0.0)
                if bias > 0.0 and (max_bias is None or bias <= max_bias):
                    biases.append(bias)
    return sorted(set(round(b, 12) for b in biases))
