"""Wall-clock measurement and extrapolation for Fig. 6.

The paper extrapolates the five largest benchmarks from shorter runs
("the running times … were extrapolated from shorter running times,
and were adjusted for a circuit simulation time of 10 us"); this
module provides the same machinery: time a bounded run, then scale to
the full event/time budget.
"""

from __future__ import annotations

import dataclasses

from repro.errors import SimulationError
from repro.telemetry.clock import time_call


@dataclasses.dataclass
class TimedRun:
    """A measured simulation segment and its extrapolation basis."""

    wall_seconds: float
    events: int
    simulated_seconds: float

    def extrapolate_to_events(self, target_events: int) -> float:
        """Projected wall time for ``target_events`` tunnel events."""
        if self.events <= 0:
            raise SimulationError("cannot extrapolate from a zero-event run")
        return self.wall_seconds * target_events / self.events

    def extrapolate_to_time(self, target_simulated: float) -> float:
        """Projected wall time for a simulated-time budget (the paper's
        10 us adjustment)."""
        if self.simulated_seconds <= 0.0:
            raise SimulationError("cannot extrapolate from zero simulated time")
        return self.wall_seconds * target_simulated / self.simulated_seconds


__all__ = ["TimedRun", "measure_engine_run", "time_call"]


def measure_engine_run(engine, max_jumps: int) -> TimedRun:
    """Run a Monte Carlo engine for ``max_jumps`` and time it.

    The wall time is the engine's own measurement
    (:attr:`repro.core.engine.RunResult.wall_time`, taken with the
    telemetry stopwatch), so benches and the engine report the same
    number instead of each keeping separate ``perf_counter`` books.
    """
    t_before = engine.solver.time
    result = engine.run(max_jumps=max_jumps)
    return TimedRun(
        wall_seconds=result.wall_time,
        events=result.jumps,
        simulated_seconds=engine.solver.time - t_before,
    )
