"""Error metrics used by the accuracy evaluation (Fig. 7)."""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


def percent_error(measured: float, reference: float) -> float:
    """``100 * |measured - reference| / |reference|``.

    This is the paper's propagation-delay error metric, with the
    averaged non-adaptive result as the reference.
    """
    if reference == 0.0:
        raise SimulationError("percent error undefined for a zero reference")
    return 100.0 * abs(measured - reference) / abs(reference)


def mean_percent_error(measured, reference) -> float:
    """Average percent error over paired sequences."""
    measured = np.asarray(measured, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if measured.shape != reference.shape:
        raise SimulationError("paired sequences must have matching shapes")
    if np.any(reference == 0.0):
        raise SimulationError("percent error undefined for a zero reference")
    return float(np.mean(100.0 * np.abs(measured - reference) / np.abs(reference)))


def relative_spread(values) -> float:
    """Std/mean of a sample — how reproducible a stochastic estimate is."""
    values = np.asarray(values, dtype=float)
    mean = values.mean()
    if mean == 0.0:
        raise SimulationError("relative spread undefined for a zero mean")
    return float(values.std() / abs(mean))


def crossover_index(series_a, series_b) -> int | None:
    """Index where series ``a`` first drops below series ``b``.

    Used to locate where the adaptive method starts beating the
    non-adaptive one in Fig. 6-style size sweeps; ``None`` when there
    is no crossover.
    """
    a = np.asarray(series_a, dtype=float)
    b = np.asarray(series_b, dtype=float)
    below = np.flatnonzero(a < b)
    return int(below[0]) if len(below) else None
