"""Counting statistics of single-electron transport.

SETs are prime charge detectors because of their noise properties
(the paper's intro cites displacement sensing and quantum-computer
readout); the textbook diagnostic is the **Fano factor**
``F = var(N) / <N>`` of the charge transferred through a junction in a
fixed time window:

* a single Poissonian barrier gives ``F = 1``;
* a symmetric double junction far above threshold gives the famous
  suppression to ``F = 1/2`` (two equal-rate barriers in series);
* strongly asymmetric junctions push ``F`` back toward 1.

These statistics exercise the Monte Carlo trajectory machinery well
beyond mean currents, so they double as a physics-level regression
suite for the solvers.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.engine import MonteCarloEngine
from repro.errors import SimulationError


@dataclasses.dataclass
class CountingStatistics:
    """Windowed electron-counting statistics through one junction."""

    mean_count: float
    variance: float
    fano_factor: float
    n_windows: int
    window_time: float

    @property
    def mean_current(self) -> float:
        from repro.constants import E_CHARGE

        return E_CHARGE * abs(self.mean_count) / self.window_time


def windowed_counts(
    engine: MonteCarloEngine,
    junction: int,
    n_windows: int,
    window_time: float,
    warmup_jumps: int = 2000,
) -> np.ndarray:
    """Net electron counts through ``junction`` in equal time windows."""
    if n_windows < 2:
        raise SimulationError("need at least two windows for statistics")
    if window_time <= 0.0:
        raise SimulationError("window_time must be > 0")
    if warmup_jumps:
        engine.run(max_jumps=warmup_jumps)
    solver = engine.solver
    counts = np.empty(n_windows)
    for w in range(n_windows):
        start = int(solver.flux[junction])
        solver.reset_window()
        # single-event stepping: windows must be cut by *simulated time*,
        # not by event count — fixed-event windows would suppress the
        # very number fluctuations the Fano factor measures
        while solver.window_elapsed < window_time:
            solver.step()
        counts[w] = solver.flux[junction] - start
    return counts


def fano_factor(
    engine: MonteCarloEngine,
    junction: int,
    n_windows: int = 60,
    window_time: float | None = None,
    warmup_jumps: int = 2000,
) -> CountingStatistics:
    """Estimate the Fano factor of the transport through ``junction``.

    ``window_time`` defaults to the span containing roughly 100 events
    (estimated from a short probe run), which keeps the windows long
    enough for meaningful counts yet short enough for many windows.
    """
    if window_time is None:
        engine.run(max_jumps=warmup_jumps)
        engine.solver.reset_window()
        probe = engine.run(max_jumps=500)
        if engine.solver.window_elapsed <= 0.0:
            raise SimulationError("cannot calibrate a window on a frozen circuit")
        window_time = engine.solver.window_elapsed / probe.jumps * 100.0
        warmup_jumps = 0
    counts = windowed_counts(engine, junction, n_windows, window_time,
                             warmup_jumps)
    mean = float(np.mean(counts))
    variance = float(np.var(counts, ddof=1))
    if mean == 0.0:
        raise SimulationError(
            "no net transport in the counting windows; increase the bias "
            "or the window length"
        )
    return CountingStatistics(
        mean_count=mean,
        variance=variance,
        fano_factor=variance / abs(mean),
        n_windows=n_windows,
        window_time=window_time,
    )
