"""Plain-text result tables for the benchmark harness.

Every figure-reproducing bench prints its rows through these helpers
so EXPERIMENTS.md and the bench output share one format.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table with a separator line, ready to print."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0.0:
            return "0"
        magnitude = abs(cell)
        if 1e-3 <= magnitude < 1e5:
            return f"{cell:.4g}"
        return f"{cell:.3e}"
    return str(cell)
