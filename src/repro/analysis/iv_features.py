"""Feature extraction from simulated I-V data.

Device papers read their transport maps through a small set of derived
quantities: differential conductance, blockade extent, oscillation
period.  These helpers compute them from the sweep results the engine
produces, so Fig. 1-style data can be reduced to the numbers the text
quotes (threshold ~ e/C, gate period e/Cg, peak positions).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import SimulationError


def differential_conductance(
    voltages: np.ndarray, currents: np.ndarray
) -> np.ndarray:
    """Central-difference ``dI/dV`` on a (possibly non-uniform) sweep."""
    voltages = np.asarray(voltages, dtype=float)
    currents = np.asarray(currents, dtype=float)
    if voltages.shape != currents.shape or len(voltages) < 3:
        raise SimulationError("need matching arrays of >= 3 sweep points")
    return np.gradient(currents, voltages)


@dataclasses.dataclass
class BlockadeRegion:
    """The suppressed-current window of an I-V curve."""

    lower: float
    upper: float

    @property
    def width(self) -> float:
        return self.upper - self.lower


def blockade_extent(
    voltages: np.ndarray,
    currents: np.ndarray,
    threshold_fraction: float = 0.02,
) -> BlockadeRegion:
    """Voltage window where ``|I|`` stays below a fraction of its max.

    Applied to Fig. 1b/1c sweeps this measures the blockade width the
    paper describes qualitatively (and the gap-induced widening of the
    superconducting device).
    """
    voltages = np.asarray(voltages, dtype=float)
    currents = np.asarray(currents, dtype=float)
    scale = float(np.max(np.abs(currents)))
    if scale == 0.0:
        raise SimulationError("flat I-V: no conduction anywhere in the sweep")
    suppressed = np.abs(currents) < threshold_fraction * scale
    if not suppressed.any():
        raise SimulationError("no suppressed region at this threshold")
    indices = np.flatnonzero(suppressed)
    return BlockadeRegion(
        lower=float(voltages[indices[0]]), upper=float(voltages[indices[-1]])
    )


def oscillation_period(
    gate_voltages: np.ndarray, currents: np.ndarray
) -> float:
    """Period of Coulomb oscillations from the two strongest peaks.

    For an ideal SET this returns ``e / Cg`` (the paper's "periodic
    current-voltage relationship ... with period e/Cg").
    """
    gate_voltages = np.asarray(gate_voltages, dtype=float)
    currents = np.abs(np.asarray(currents, dtype=float))
    if len(gate_voltages) < 5:
        raise SimulationError("need >= 5 gate points to find two peaks")
    peaks = [
        i for i in range(1, len(currents) - 1)
        if currents[i] >= currents[i - 1] and currents[i] >= currents[i + 1]
        and currents[i] > 0.1 * currents.max()
    ]
    if len(peaks) < 2:
        raise SimulationError("fewer than two oscillation peaks in the sweep")
    positions = gate_voltages[peaks]
    return float(np.min(np.diff(positions)))
