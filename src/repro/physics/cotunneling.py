"""Second-order inelastic cotunneling (Fonseca et al. style).

In a Coulomb-blockaded circuit sequential tunneling is exponentially
suppressed, but an electron can still traverse *two* junctions in one
coherent second-order process via a virtual intermediate state.  The
paper includes inelastic cotunneling "up to the second order" using the
coexistence principle of Fonseca et al. [24]; elastic cotunneling is
neglected (Sec. II), as it is here.

For a path through junctions ``(1, 2)`` with intermediate virtual-state
energies ``E_1`` and ``E_2`` (the costs of performing either single
jump first) and total free-energy change ``dW``, the finite-temperature
Averin-Nazarov rate is

.. math::

    \\Gamma = \\frac{\\hbar}{2\\pi e^4 R_1 R_2}
        \\left(\\frac{1}{E_1} + \\frac{1}{E_2}\\right)^2
        \\frac{\\Delta W^2 + (2\\pi k_B T)^2}{6}\\;
        \\frac{-\\Delta W}{1 - e^{\\Delta W / k_B T}}

which obeys detailed balance and reproduces the famous ``I \\propto
V^3`` law at ``T = 0``.  Following the coexistence principle, when an
intermediate state becomes energetically *allowed* (``E_i`` small or
negative) the sequential channel dominates and the perturbative
expression diverges; we regularise by flooring the virtual energies at
``energy_floor`` (default: the larger of ``k_B T`` and a small fraction
of the mean charging scale), the standard cutoff in MC simulators.
"""

from __future__ import annotations

import dataclasses
import math

from repro.circuit.circuit import Circuit
from repro.circuit.components import NodeKind, NodeRef
from repro.constants import E_CHARGE, HBAR, K_B
from repro.errors import PhysicsError
from repro.physics.fermi import bose_weight
from repro.static import array_contract, units

#: Floor on virtual-state energies as a fraction of e^2/(2 C_typical).
FLOOR_FRACTION = 0.05


@dataclasses.dataclass(frozen=True)
class CotunnelingPath:
    """One directed two-junction cotunneling channel ``a -> m -> b``.

    ``junction_in`` carries the electron onto the intermediate island
    ``ref_m``; ``junction_out`` carries it off.  The *direction* flags
    record whether the electron traverses each junction from its
    ``node_a`` to its ``node_b`` (+1) or the reverse (-1); solvers use
    them to translate a chosen path into charge-state updates and
    current bookkeeping.
    """

    index: int
    junction_in: int
    direction_in: int
    junction_out: int
    direction_out: int
    ref_a: NodeRef
    ref_m: NodeRef
    ref_b: NodeRef


def enumerate_paths(circuit: Circuit) -> tuple[CotunnelingPath, ...]:
    """All directed second-order paths through one intermediate island.

    Paths whose entry and exit nodes coincide are skipped: they move no
    net charge and contribute nothing to transport.
    """
    paths: list[CotunnelingPath] = []
    resolved = circuit.resolved_junctions()
    on_island = circuit.junctions_on_island()
    idx = 0
    for island, members in enumerate(on_island):
        for j_in in members:
            for j_out in members:
                if j_in == j_out:
                    continue
                rin, rout = resolved[j_in], resolved[j_out]
                # electron enters the island through j_in ...
                if rin.ref_b.is_island and rin.ref_b.index == island:
                    ref_a, dir_in = rin.ref_a, +1
                else:
                    ref_a, dir_in = rin.ref_b, -1
                # ... and leaves through j_out
                if rout.ref_a.is_island and rout.ref_a.index == island:
                    ref_b, dir_out = rout.ref_b, +1
                else:
                    ref_b, dir_out = rout.ref_a, -1
                if ref_a == ref_b:
                    continue
                paths.append(
                    CotunnelingPath(
                        index=idx,
                        junction_in=j_in,
                        direction_in=dir_in,
                        junction_out=j_out,
                        direction_out=dir_out,
                        ref_a=ref_a,
                        ref_m=_island_ref(island),
                        ref_b=ref_b,
                    )
                )
                idx += 1
    return tuple(paths)


def _island_ref(island: int) -> NodeRef:
    return NodeRef(NodeKind.ISLAND, island)


@units("dw_total: J, e_virtual_1: J, e_virtual_2: J, resistance_1: ohm, "
       "resistance_2: ohm, temperature: K, energy_floor: J -> 1/s")
@array_contract(dw_total="() float64", out="() float64")
def cotunneling_rate(
    dw_total: float,
    e_virtual_1: float,
    e_virtual_2: float,
    resistance_1: float,
    resistance_2: float,
    temperature: float,
    energy_floor: float,
) -> float:
    """Inelastic cotunneling rate (1/s) for one directed path.

    ``e_virtual_1`` is the free-energy cost of hopping onto the island
    first; ``e_virtual_2`` of hopping off first.  Both are floored at
    ``energy_floor`` per the coexistence principle.
    """
    if resistance_1 <= 0.0 or resistance_2 <= 0.0:
        raise PhysicsError("junction resistances must be > 0")
    if energy_floor <= 0.0:
        raise PhysicsError(f"energy floor must be > 0, got {energy_floor}")
    e1 = max(e_virtual_1, energy_floor)
    e2 = max(e_virtual_2, energy_floor)
    prefactor = HBAR / (2.0 * math.pi * E_CHARGE**4 * resistance_1 * resistance_2)
    virtual = (1.0 / e1 + 1.0 / e2) ** 2
    two_pi_kt = 2.0 * math.pi * K_B * temperature
    window = (dw_total * dw_total + two_pi_kt * two_pi_kt) / 6.0
    # bose_weight(dW) = -dW / (1 - exp(dW/kT)) evaluated stably
    thermal = bose_weight(dw_total, temperature)
    return prefactor * virtual * window * thermal


@units("temperature: K, charging_scale: J -> J")
def default_energy_floor(temperature: float, charging_scale: float) -> float:
    """Regularisation floor for virtual energies.

    ``charging_scale`` should be a typical single-electron charging
    energy of the circuit, e.g. ``e^2/2 * mean(charging coefficient)``.
    """
    if charging_scale <= 0.0:
        raise PhysicsError("charging scale must be > 0")
    return max(K_B * temperature, FLOOR_FRACTION * charging_scale)


@units("voltage: V, e_virtual_1: J, e_virtual_2: J, resistance_1: ohm, "
       "resistance_2: ohm -> A")
def cotunneling_current_t0(
    voltage: float,
    e_virtual_1: float,
    e_virtual_2: float,
    resistance_1: float,
    resistance_2: float,
) -> float:
    """Zero-temperature analytic cotunneling current ``I = A V^3``.

    The closed form used by the paper's Sec. IV-A validation (and by
    the SIMON example set): with fixed virtual energies the net current
    through a two-junction system deep in blockade is

    .. math:: I = \\frac{\\hbar}{12 \\pi e^2 R_1 R_2}
              \\left(\\frac{1}{E_1}+\\frac{1}{E_2}\\right)^2 (eV)^2 V
    """
    virtual = (1.0 / e_virtual_1 + 1.0 / e_virtual_2) ** 2
    prefactor = HBAR / (12.0 * math.pi * E_CHARGE**2 * resistance_1 * resistance_2)
    return prefactor * virtual * (E_CHARGE * voltage) ** 2 * voltage
