"""BCS superconductivity: temperature-dependent gap and reduced DOS.

The paper needs two ingredients (Sec. III-A):

* the temperature-dependent energy gap ``Delta(T)`` entering both the
  quasi-particle DOS and the Josephson energy;
* the BCS reduced density of states ``N_s(E)/N(0)`` of Eq. 4.

``Delta(T)`` is computed from the universal weak-coupling BCS gap
equation in reduced units (``delta = Delta/Delta0`` versus
``t = T/Tc``), solved once on a grid and interpolated, with the popular
``tanh(1.74 sqrt(Tc/T - 1))`` closed form available for cross-checks.
"""

from __future__ import annotations

import functools
import math

import numpy as np
from scipy import integrate, optimize

from repro.constants import BCS_RATIO
from repro.errors import PhysicsError
from repro.static import units


def _gap_equation_residual(u: float, tau: float) -> float:
    """Residual of the reduced BCS gap equation.

    ``u = Delta/Delta0``; ``tau = kT/Delta0``.  The equation is
    ``ln(1/u) = 2 * integral_0^inf f(sqrt(x^2+u^2)/tau) / sqrt(x^2+u^2) dx``
    with energies in units of ``Delta0``.
    """

    def integrand(x: float) -> float:
        e = math.hypot(x, u)
        # Fermi occupation with overflow guard.
        arg = e / tau
        if arg > 500.0:
            return 0.0
        return 1.0 / (math.exp(arg) + 1.0) / e

    upper = max(30.0 * tau, 10.0 * u, 1.0)
    integral, _ = integrate.quad(integrand, 0.0, upper, limit=200)
    return math.log(1.0 / u) - 2.0 * integral


@functools.lru_cache(maxsize=1)
def _universal_gap_table(n_points: int = 200) -> tuple[np.ndarray, np.ndarray]:
    """Tabulate the universal BCS function ``delta(t)`` on ``t in (0, 1)``."""
    ts = np.linspace(1e-3, 0.999, n_points)
    deltas = np.empty_like(ts)
    for i, t in enumerate(ts):
        tau = t / BCS_RATIO
        lo, hi = 1e-8, 1.0
        # residual(1.0) <= 0 for t > 0 and residual(->0) -> +inf
        try:
            deltas[i] = optimize.brentq(
                _gap_equation_residual, lo, hi, args=(tau,), xtol=1e-12
            )
        except ValueError:
            deltas[i] = 0.0
    return ts, deltas


@units("temperature: K, delta0: J, tc: K -> J")
def bcs_gap(temperature: float, delta0: float, tc: float, method: str = "selfconsistent") -> float:
    """Gap ``Delta(T)`` in joules.

    Parameters
    ----------
    temperature:
        Temperature in kelvin; values at or above ``tc`` return 0.
    delta0:
        Zero-temperature gap in joules.
    tc:
        Critical temperature in kelvin.
    method:
        ``"selfconsistent"`` interpolates the universal weak-coupling
        solution; ``"tanh"`` uses the closed form
        ``Delta0 * tanh(1.74 * sqrt(Tc/T - 1))``.
    """
    if delta0 <= 0.0 or tc <= 0.0:
        raise PhysicsError("delta0 and tc must both be > 0")
    if temperature < 0.0:
        raise PhysicsError(f"temperature must be >= 0, got {temperature}")
    if temperature >= tc:
        return 0.0
    if temperature == 0.0:
        return delta0
    t = temperature / tc
    if method == "tanh":
        return delta0 * math.tanh(1.74 * math.sqrt(1.0 / t - 1.0))
    if method != "selfconsistent":
        raise PhysicsError(f"unknown gap method {method!r}")
    ts, deltas = _universal_gap_table()
    return delta0 * float(np.interp(t, ts, deltas))


@units("energy: J, delta: J -> 1")
def reduced_dos(energy, delta: float):
    """BCS reduced density of states of Eq. 4.

    ``N_s(E)/N(0) = |E| / sqrt(E^2 - Delta^2)`` for ``|E| > Delta`` and
    zero inside the gap.  ``delta = 0`` returns the normal-state value 1.
    Accepts scalars or arrays; the inverse-square-root divergence at the
    gap edge is integrable and handled by the substitution quadrature in
    :mod:`repro.physics.quasiparticle`.
    """
    energy = np.asarray(energy, dtype=float)
    if delta < 0.0:
        raise PhysicsError(f"gap must be >= 0, got {delta}")
    if delta == 0.0:
        out = np.ones_like(energy)
        return out if out.ndim else float(out)
    abs_e = np.abs(energy)
    out = np.zeros_like(energy)
    outside = abs_e > delta
    out[outside] = abs_e[outside] / np.sqrt(abs_e[outside] ** 2 - delta * delta)
    return out if out.ndim else float(out)
