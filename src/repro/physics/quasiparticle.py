"""Quasi-particle tunneling between superconducting electrodes (Eq. 3).

The golden-rule rate for an event whose free-energy change is ``dW``::

    Gamma(dW) = 1/(e^2 R) * integral dE  rho1(E) rho2(E - dW)
                                         f(E) [1 - f(E - dW)]

with ``rho`` the BCS reduced DOS (Eq. 4).  Dividing the corresponding
current (Eq. 3) by the thermal factor of Eq. 1 gives the same function;
we evaluate the golden-rule form directly because it stays numerically
stable deep in the blockade.

The integrand has inverse-square-root singularities at the four gap
edges ``+-Delta1`` and ``dW +- Delta2``.  Each integration segment that
touches a singular endpoint is mapped through ``E = edge +- s * t^2``,
which removes the singularity exactly, then integrated with
Gauss-Legendre quadrature.  A per-junction lookup table over ``dW``
makes the Monte Carlo inner loop cheap: superconducting rates reduce to
one linear interpolation per junction per iteration, exactly the sort
of precomputation a production simulator performs.

This machinery also produces the *singularity-matching* sub-gap
features of Fig. 5 automatically: at finite temperature the thermally
excited quasi-particles populate the singular DOS just above the gap,
and the E-integral peaks whenever the two singularities align.
"""

from __future__ import annotations

import numpy as np

from repro.constants import E_CHARGE, K_B
from repro.errors import PhysicsError
from repro.physics.bcs import reduced_dos
from repro.physics.fermi import fermi
from repro.physics.orthodox import orthodox_rate
from repro.static import array_contract, hot, units

#: Gauss-Legendre order used on every integration (sub)segment.
_GL_ORDER = 64
_GL_NODES, _GL_WEIGHTS = np.polynomial.legendre.leggauss(_GL_ORDER)
#: Half-width of the thermal window in units of kT.
_THERMAL_WINDOW = 45.0


@units("e: J, dw: J, delta1: J, delta2: J, temperature: K -> 1")
@array_contract(e="any float64", out="any float64")
def _integrand(e: np.ndarray, dw: float, delta1: float, delta2: float,
               temperature: float) -> np.ndarray:
    rho = reduced_dos(e, delta1) * reduced_dos(e - dw, delta2)
    occ = fermi(e, temperature) * (1.0 - fermi(e - dw, temperature))
    return rho * occ


def _gauss_segment(lo: float, hi: float, func) -> float:
    """Plain Gauss-Legendre integral of ``func`` over ``[lo, hi]``."""
    mid = 0.5 * (lo + hi)
    half = 0.5 * (hi - lo)
    return half * float(np.sum(_GL_WEIGHTS * func(mid + half * _GL_NODES)))


def _sqrt_segment(edge: float, other: float, func) -> float:
    """Integral over ``[edge, other]`` with a 1/sqrt singularity at ``edge``.

    Substituting ``E = edge + (other - edge) * t^2`` (``t`` in [0, 1])
    turns the integrable singularity into a bounded integrand.
    """
    span = other - edge
    # map Gauss nodes from [-1, 1] to [0, 1]
    t = 0.5 * (_GL_NODES + 1.0)
    values = func(edge + span * t * t) * 2.0 * abs(span) * t
    # |span| orients the result from the low end to the high end of the
    # segment regardless of which endpoint carries the singularity.
    return 0.5 * float(np.sum(_GL_WEIGHTS * values))


@units("dw: J, resistance: ohm, delta1: J, delta2: J, temperature: K -> 1/s")
@array_contract(dw="() float64", out="() float64")
def qp_rate(dw: float, resistance: float, delta1: float, delta2: float,
            temperature: float) -> float:
    """Quasi-particle tunneling rate (1/s) for free-energy change ``dw``.

    ``delta1``/``delta2`` are the gaps of the source/destination
    electrodes in joules; either may be zero (normal electrode).
    """
    if resistance <= 0.0:
        raise PhysicsError(f"resistance must be > 0, got {resistance}")
    if delta1 < 0.0 or delta2 < 0.0:
        raise PhysicsError("gaps must be >= 0")
    if delta1 == 0.0 and delta2 == 0.0:
        return float(orthodox_rate(dw, resistance, temperature))

    kt = K_B * temperature
    # f(E) kills the integrand above +window; 1 - f(E - dW) kills it
    # below dW - window.  At T = 0 the occupied window collapses to
    # [dW, 0], which is empty for unfavourable events.
    window = _THERMAL_WINDOW * kt
    lo = dw - window
    hi = window
    if lo >= hi:
        return 0.0

    edges = {-delta1, delta1, dw - delta2, dw + delta2}
    points = sorted({lo, hi, *(p for p in edges if lo < p < hi)})

    def func(e: np.ndarray) -> np.ndarray:
        return _integrand(e, dw, delta1, delta2, temperature)

    total = 0.0
    for p, q in zip(points[:-1], points[1:]):
        if q - p <= 0.0:
            continue
        mid = 0.5 * (p + q)
        if reduced_dos(mid, delta1) == 0.0 or reduced_dos(mid - dw, delta2) == 0.0:
            continue  # segment lies inside a gap
        p_singular = p in edges
        q_singular = q in edges
        if p_singular and q_singular:
            total += _sqrt_segment(p, mid, func)
            total += _sqrt_segment(q, mid, func)
        elif p_singular:
            total += _sqrt_segment(p, q, func)
        elif q_singular:
            total += _sqrt_segment(q, p, func)
        else:
            total += _gauss_segment(p, q, func)
    return total / (E_CHARGE * E_CHARGE * resistance)


@units("voltage: V, resistance: ohm, delta1: J, delta2: J, "
       "temperature: K -> A")
def qp_current(voltage: float, resistance: float, delta1: float, delta2: float,
               temperature: float) -> float:
    """Quasi-particle I-V of a single voltage-biased junction (Eq. 3).

    The net current is ``e * (Gamma(-eV) - Gamma(+eV))``: across a bare
    junction the free-energy change of a favourable transfer is
    ``-eV``.
    """
    fwd = qp_rate(-E_CHARGE * voltage, resistance, delta1, delta2, temperature)
    bwd = qp_rate(+E_CHARGE * voltage, resistance, delta1, delta2, temperature)
    return E_CHARGE * (fwd - bwd)


class QuasiparticleRateTable:
    """Tabulated ``Gamma_qp(dW)`` for one junction.

    Building the table costs a few thousand quadratures once; evaluating
    it is a single ``np.interp``.  Outside the tabulated span the rate
    is extended by its asymptotes (ohmic orthodox rate far below, zero
    far above), which the tests check against direct quadrature.
    """

    @units("resistance: ohm, delta1: J, delta2: J, temperature: K, "
           "dw_max: J")
    def __init__(
        self,
        resistance: float,
        delta1: float,
        delta2: float,
        temperature: float,
        dw_max: float | None = None,
        n_points: int = 4001,
    ):
        if n_points < 3:
            raise PhysicsError("table needs at least 3 points")
        self.resistance = resistance
        self.delta1 = delta1
        self.delta2 = delta2
        self.temperature = temperature
        if dw_max is None:
            dw_max = 12.0 * (delta1 + delta2) + 120.0 * K_B * temperature
            dw_max = max(dw_max, 1e-22)
        self.dw_max = dw_max
        self._grid = np.linspace(-dw_max, dw_max, n_points)
        self._rates = np.array(
            [qp_rate(dw, resistance, delta1, delta2, temperature) for dw in self._grid]
        )
        # continuity factor matching the ohmic extension to the table's
        # lower edge, so rates stay smooth across the span boundary
        edge_ohmic = float(
            orthodox_rate(self._grid[0] + delta1 + delta2, resistance, temperature)
        )
        self._extension_scale = (
            self._rates[0] / edge_ohmic if edge_ohmic > 0.0 else 1.0
        )

    @hot
    @units("dw: J -> 1/s")
    @array_contract(dw="any float64", out="any float64")
    def __call__(self, dw):
        """Interpolated rate; accepts scalars or arrays."""
        dw_arr = np.asarray(dw, dtype=float)
        out = np.interp(dw_arr, self._grid, self._rates)
        below = dw_arr < self._grid[0]
        if np.any(below):
            # Deep ohmic regime: gaps are negligible, the junction is
            # effectively normal with an offset of (delta1 + delta2);
            # the continuity factor removes the O(5%) step at the edge.
            shifted = dw_arr[below] + self.delta1 + self.delta2
            out = np.array(out, copy=True)
            out[below] = self._extension_scale * orthodox_rate(
                shifted, self.resistance, self.temperature
            )
        above = dw_arr > self._grid[-1]
        if np.any(above):
            out = np.array(out, copy=True)
            out[above] = 0.0
        return out if out.ndim else float(out)
