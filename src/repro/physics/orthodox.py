"""Orthodox-theory sequential tunneling rates (Eq. 1 of the paper).

For a normal-state junction the current-voltage characteristic is ohmic,
``I(V) = V / R``, and Eq. 1 reduces to the textbook orthodox rate

.. math::

    \\Gamma(\\Delta W) = \\frac{-\\Delta W / e^2 R}
                             {1 - \\exp(\\Delta W / k_B T)}

with :math:`\\Delta W` the free-energy change of the event (negative
when the event is energetically favourable).
"""

from __future__ import annotations

import numpy as np

from repro.constants import E_CHARGE
from repro.errors import PhysicsError
from repro.physics.fermi import bose_weight
from repro.static import array_contract, hot, units


@units("delta_w: J, resistance: ohm, temperature: K -> 1/s")
@array_contract(delta_w="any float64", out="any float64")
def orthodox_rate(delta_w, resistance: float, temperature: float):
    """Sequential tunneling rate in 1/s for one junction.

    Parameters
    ----------
    delta_w:
        Free-energy change of the tunnel event in joules (scalar or
        array).
    resistance:
        Junction normal-state resistance in ohms.
    temperature:
        Temperature in kelvin; ``T = 0`` gives the sharp-threshold
        limit ``max(-dW, 0) / e^2 R``.
    """
    if resistance <= 0.0:
        raise PhysicsError(f"resistance must be > 0, got {resistance}")
    weight = bose_weight(delta_w, temperature)
    return weight / (E_CHARGE * E_CHARGE * resistance)


@hot
@units("delta_w_forward: J, delta_w_backward: J, resistances: ohm, "
       "temperature: K -> 1/s")
@array_contract(
    delta_w_forward="(n_junctions,) float64",
    delta_w_backward="(n_junctions,) float64",
    resistances="(n_junctions,) float64",
)
def orthodox_rates_both(delta_w_forward, delta_w_backward, resistances, temperature):
    """Vectorised forward/backward rates for arrays of junctions."""
    resistances = np.asarray(resistances, dtype=float)
    denom = E_CHARGE * E_CHARGE * resistances
    return (
        bose_weight(delta_w_forward, temperature) / denom,
        bose_weight(delta_w_backward, temperature) / denom,
    )


@units("total_capacitance: F -> V")
def threshold_voltage(total_capacitance: float) -> float:
    """Zero-temperature Coulomb-blockade onset ``e / C_sigma`` for a
    symmetrically biased SET at a blockade maximum.

    Used by tests and benches to predict where Fig. 1b's suppressed
    region should end.
    """
    if total_capacitance <= 0.0:
        raise PhysicsError("total capacitance must be > 0")
    return E_CHARGE / total_capacitance
