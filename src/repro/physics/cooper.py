"""Incoherent Cooper-pair tunneling in the high-resistance regime.

The paper (Sec. III-A) models Cooper-pair transport for junctions with
``R_N >> R_Q = h/4e^2`` and ``E_J << E_c``.  In that regime pair
tunneling is an incoherent, lifetime-broadened resonance: the rate is a
Lorentzian in the free-energy mismatch ``dW`` of the 2e transfer,

.. math::

    \\Gamma_{cp}(\\Delta W) = \\frac{E_J^2}{2\\hbar}\\,
        \\frac{\\gamma}{\\Delta W^2 + (\\gamma/2)^2}

where ``gamma`` is the linewidth energy (``hbar`` times the decay rate
of the intermediate state, physically set by the subsequent
quasi-particle escape).  Peak positions — which determine where the JQP
and DJQP resonances of Figs. 1c and 5 sit — depend only on the circuit
electrostatics; the linewidth affects peak heights, so it is exposed as
a model parameter with a physically motivated default.

The Josephson energy follows Ambegaokar-Baratoff with the standard
finite-temperature correction::

    E_J(T) = (h Delta(T) / 8 e^2 R_N) * tanh(Delta(T) / 2 k_B T)
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import E_CHARGE, H_PLANCK, HBAR, K_B, R_QUANTUM
from repro.errors import PhysicsError
from repro.static import units

#: Default linewidth as a fraction of the gap when not provided.
DEFAULT_LINEWIDTH_FRACTION = 0.02


@units("resistance: ohm, delta: J, temperature: K -> J")
def josephson_energy(resistance: float, delta: float, temperature: float) -> float:
    """Ambegaokar-Baratoff Josephson energy ``E_J(T)`` in joules."""
    if resistance <= 0.0:
        raise PhysicsError(f"resistance must be > 0, got {resistance}")
    if delta < 0.0:
        raise PhysicsError(f"gap must be >= 0, got {delta}")
    if delta == 0.0:
        return 0.0
    ej0 = H_PLANCK * delta / (8.0 * E_CHARGE * E_CHARGE * resistance)
    if temperature <= 0.0:
        return ej0
    return ej0 * math.tanh(delta / (2.0 * K_B * temperature))


@units("resistance: ohm, josephson: J, charging: J")
def validate_regime(resistance: float, josephson: float, charging: float) -> None:
    """Check the model's validity assumptions (Sec. III-A).

    Raises :class:`PhysicsError` if ``R_N <= R_Q`` or ``E_J >= E_c``;
    outside those limits the incoherent-Lorentzian picture is wrong and
    the simulator must not silently produce numbers.
    """
    if resistance <= R_QUANTUM:
        raise PhysicsError(
            f"Cooper-pair model requires R_N >> R_Q ({R_QUANTUM:.0f} Ohm); "
            f"got R_N = {resistance:.3g} Ohm"
        )
    if josephson >= charging:
        raise PhysicsError(
            f"Cooper-pair model requires E_J << E_c; got E_J = {josephson:.3g} J "
            f">= E_c = {charging:.3g} J"
        )


@units("dw: J, josephson: J, linewidth: J -> 1/s")
def cooper_pair_rate(dw, josephson: float, linewidth: float):
    """Incoherent Cooper-pair tunneling rate (1/s).

    Parameters
    ----------
    dw:
        Free-energy change of the 2e transfer in joules (scalar/array).
    josephson:
        Josephson energy ``E_J`` in joules.
    linewidth:
        Lorentzian full width ``gamma`` in joules (must be > 0).
    """
    if linewidth <= 0.0:
        raise PhysicsError(f"linewidth must be > 0, got {linewidth}")
    dw = np.asarray(dw, dtype=float)
    rate = (josephson * josephson / (2.0 * HBAR)) * linewidth / (
        dw * dw + 0.25 * linewidth * linewidth
    )
    return rate if rate.ndim else float(rate)


@units("delta: J, temperature: K -> J")
def default_linewidth(delta: float, temperature: float = 0.0) -> float:
    """Default linewidth energy.

    The floor is a small fraction of the gap (lifetime broadening from
    the quasi-particle escape that completes a JQP cycle); at finite
    temperature the resonance condition is additionally smeared by the
    thermal width of the quasi-particle distribution, so the larger of
    the two scales is used.  This is what lets a coarse (bias, gate)
    grid resolve the JQP ridges of Fig. 5 the way a measurement at
    0.52 K does.
    """
    if delta <= 0.0:
        raise PhysicsError(f"gap must be > 0, got {delta}")
    if temperature < 0.0:
        raise PhysicsError(f"temperature must be >= 0, got {temperature}")
    return max(DEFAULT_LINEWIDTH_FRACTION * delta, K_B * temperature)
