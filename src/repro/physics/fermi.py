"""Fermi-Dirac occupation with overflow-safe evaluation."""

from __future__ import annotations

import numpy as np

from repro.constants import K_B
from repro.errors import PhysicsError
from repro.static import units


@units("energy: J, temperature: K -> 1")
def fermi(energy, temperature: float):
    """Fermi-Dirac occupation ``f(E) = 1 / (exp(E/kT) + 1)``.

    Accepts scalars or arrays; energies in joules relative to the Fermi
    level.  Evaluated as ``0.5 * (1 - tanh(E / 2kT))``, which never
    overflows.  At ``T = 0`` it degenerates to the step function with
    ``f(0) = 1/2``.
    """
    energy = np.asarray(energy, dtype=float)
    if temperature < 0.0:
        raise PhysicsError(f"temperature must be >= 0, got {temperature}")
    if temperature == 0.0:
        out = np.where(energy < 0.0, 1.0, np.where(energy > 0.0, 0.0, 0.5))
        return out if out.ndim else float(out)
    x = energy / (2.0 * K_B * temperature)
    out = 0.5 * (1.0 - np.tanh(x))
    return out if out.ndim else float(out)


@units("energy: J, temperature: K -> J")
def bose_weight(energy, temperature: float):
    """The detailed-balance weight ``x / (exp(x/kT) - 1)`` with ``x`` in J.

    This is the thermal factor of the orthodox rate (Eq. 1 rearranged);
    the function is finite and positive everywhere, approaching ``kT``
    as ``x -> 0`` and ``-x`` as ``x -> -inf``.
    """
    energy = np.asarray(energy, dtype=float)
    if temperature < 0.0:
        raise PhysicsError(f"temperature must be >= 0, got {temperature}")
    if temperature == 0.0:
        out = np.where(energy < 0.0, -energy, 0.0)
        return out if out.ndim else float(out)
    kt = K_B * temperature
    x = energy / kt
    # Piecewise evaluation keeps expm1 inside its safe range.
    out = np.empty_like(energy)
    small = np.abs(x) < 1e-12
    big = x > 500.0
    normal = ~(small | big)
    out[small] = kt
    out[big] = 0.0
    with np.errstate(over="ignore"):
        out[normal] = energy[normal] / np.expm1(x[normal])
    return out if out.ndim else float(out)
