"""Per-circuit bundle of tunneling rate models.

:class:`TunnelingModel` is the single object solvers talk to for rate
physics.  It inspects the circuit once, prepares whatever is expensive
(quasi-particle rate tables, Josephson energies, cotunneling paths) and
then answers vectorised rate queries:

* :meth:`sequential_rates` — orthodox rates for normal circuits or
  tabulated quasi-particle rates for superconducting ones;
* :meth:`cooper_pair_rates` — Lorentzian 2e rates (superconducting);
* :meth:`cotunneling_rates` — second-order inelastic rates over the
  enumerated path set.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.electrostatics import Electrostatics
from repro.circuit.junction_table import JunctionTable
from repro.constants import E_CHARGE, K_B
from repro.errors import PhysicsError
from repro.physics.bcs import bcs_gap
from repro.physics.cooper import (
    cooper_pair_rate,
    default_linewidth,
    josephson_energy,
    validate_regime,
)
from repro.physics.cotunneling import (
    CotunnelingPath,
    cotunneling_rate,
    default_energy_floor,
    enumerate_paths,
)
from repro.physics.orthodox import orthodox_rate, orthodox_rates_both
from repro.physics.quasiparticle import QuasiparticleRateTable
from repro.static import array_contract, hot, units


class TunnelingModel:
    """Rate physics for one circuit at one temperature.

    Parameters
    ----------
    circuit, electrostatics, junction_table:
        The frozen circuit and its prepared electrostatic views.
    temperature:
        Bath temperature in kelvin.
    include_cotunneling:
        Enable second-order inelastic cotunneling events.
    include_cooper_pairs:
        Enable 2e events on superconducting circuits (default on when
        the circuit is superconducting).
    cooper_linewidth:
        Lorentzian linewidth energy in joules; defaults to a small
        fraction of the gap.
    cotunneling_energy_floor:
        Regularisation floor for virtual-state energies in joules.
    qp_table_points:
        Resolution of the quasi-particle rate tables.
    """

    @units("temperature: K, cooper_linewidth: J, cotunneling_energy_floor: J")
    def __init__(
        self,
        circuit: Circuit,
        electrostatics: Electrostatics,
        junction_table: JunctionTable,
        temperature: float,
        include_cotunneling: bool = False,
        include_cooper_pairs: bool | None = None,
        cooper_linewidth: float | None = None,
        cotunneling_energy_floor: float | None = None,
        qp_table_points: int = 4001,
    ):
        if temperature < 0.0:
            raise PhysicsError(f"temperature must be >= 0, got {temperature}")
        self.circuit = circuit
        self.electrostatics = electrostatics
        self.junction_table = junction_table
        self.temperature = temperature
        self.include_cotunneling = include_cotunneling

        self.superconducting = circuit.is_superconducting
        if include_cooper_pairs is None:
            include_cooper_pairs = self.superconducting
        if include_cooper_pairs and not self.superconducting:
            raise PhysicsError(
                "Cooper-pair tunneling requires a superconducting circuit"
            )
        self.include_cooper_pairs = include_cooper_pairs

        #: typical charging energy, used for cotunneling regularisation
        self.charging_scale = float(
            0.5 * E_CHARGE * E_CHARGE * np.mean(junction_table.charging)
        )

        self.gap = 0.0
        self._qp_tables: list[QuasiparticleRateTable] = []
        self.josephson = np.zeros(junction_table.n_junctions)
        self.cooper_linewidth = 0.0
        if self.superconducting:
            sc = circuit.superconductor
            self.gap = bcs_gap(temperature, sc.delta0, sc.tc)
            if self.gap <= 0.0:
                raise PhysicsError(
                    f"T = {temperature} K is at or above Tc = {sc.tc} K; "
                    "the circuit is no longer superconducting — simulate it "
                    "as a normal circuit instead"
                )
            dw_max = self._qp_table_span()
            cache: dict[float, QuasiparticleRateTable] = {}
            for rj in circuit.resolved_junctions():
                table = cache.get(rj.resistance)
                if table is None:
                    table = QuasiparticleRateTable(
                        rj.resistance,
                        self.gap,
                        self.gap,
                        temperature,
                        dw_max=dw_max,
                        n_points=qp_table_points,
                    )
                    cache[rj.resistance] = table
                self._qp_tables.append(table)
            if self.include_cooper_pairs:
                for i, rj in enumerate(circuit.resolved_junctions()):
                    ej = josephson_energy(rj.resistance, self.gap, temperature)
                    charging = (
                        0.5 * (2.0 * E_CHARGE) ** 2 * junction_table.charging[i]
                    )
                    validate_regime(rj.resistance, ej, charging)
                    self.josephson[i] = ej
                self.cooper_linewidth = (
                    cooper_linewidth
                    if cooper_linewidth is not None
                    else default_linewidth(self.gap, temperature)
                )

        self.paths: tuple[CotunnelingPath, ...] = ()
        self.energy_floor = 0.0
        if include_cotunneling:
            if self.superconducting:
                raise PhysicsError(
                    "cotunneling is implemented for normal-state circuits "
                    "(the paper neglects quasi-particle cotunneling, Sec. II)"
                )
            self.paths = enumerate_paths(circuit)
            self.energy_floor = (
                cotunneling_energy_floor
                if cotunneling_energy_floor is not None
                else default_energy_floor(temperature, self.charging_scale)
            )

    # ------------------------------------------------------------------
    @units("-> J")
    def _qp_table_span(self) -> float:
        """Free-energy span the quasi-particle tables must cover.

        Keeping the span tight keeps the grid fine around the gap edges
        (the physics of Figs. 1c and 5 lives within a few ``Delta`` of
        zero); far outside the span the table's asymptotic extensions
        are accurate, so nothing is gained by tabulating further out.
        """
        return 16.0 * 2.0 * self.gap + 120.0 * K_B * self.temperature

    # ------------------------------------------------------------------
    # rate queries
    # ------------------------------------------------------------------
    @hot
    @units("dw_forward: J, dw_backward: J -> 1/s")
    @array_contract(
        dw_forward="(n_junctions,) float64",
        dw_backward="(n_junctions,) float64",
    )
    def sequential_rates(
        self, dw_forward: np.ndarray, dw_backward: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Single-electron rates for all junctions, both directions."""
        if not self.superconducting:
            return orthodox_rates_both(
                dw_forward, dw_backward, self.junction_table.resistance,
                self.temperature,
            )
        fwd = np.empty_like(dw_forward)
        bwd = np.empty_like(dw_backward)
        for i, table in enumerate(self._qp_tables):
            fwd[i] = table(dw_forward[i])
            bwd[i] = table(dw_backward[i])
        return fwd, bwd

    @units("dw: J -> 1/s")
    def sequential_rate_single(self, junction: int, dw: float) -> float:
        """Single-electron rate for one junction and one direction."""
        if not self.superconducting:
            resistance = float(self.junction_table.resistance[junction])
            return float(orthodox_rate(dw, resistance, self.temperature))
        return float(self._qp_tables[junction](dw))

    @hot
    @units("dw_forward: J, dw_backward: J -> 1/s")
    @array_contract(
        dw_forward="(n_junctions,) float64",
        dw_backward="(n_junctions,) float64",
    )
    def cooper_pair_rates(
        self, dw_forward: np.ndarray, dw_backward: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """2e transfer rates for all junctions, both directions."""
        if not self.include_cooper_pairs:
            zeros = np.zeros_like(dw_forward)
            return zeros, zeros.copy()
        fwd = cooper_pair_rate(dw_forward, 1.0, self.cooper_linewidth)
        bwd = cooper_pair_rate(dw_backward, 1.0, self.cooper_linewidth)
        ej2 = self.josephson * self.josephson
        return fwd * ej2, bwd * ej2

    @units("dw_total: J, e_virtual_1: J, e_virtual_2: J -> 1/s")
    def cotunneling_rate_for_path(
        self, path: CotunnelingPath, dw_total: float, e_virtual_1: float,
        e_virtual_2: float,
    ) -> float:
        """Rate of one directed cotunneling path given its energies."""
        r1 = self.junction_table.resistance[path.junction_in]
        r2 = self.junction_table.resistance[path.junction_out]
        return cotunneling_rate(
            dw_total, e_virtual_1, e_virtual_2, r1, r2,
            self.temperature, self.energy_floor,
        )
