"""Tunneling physics: orthodox theory, cotunneling, superconductivity."""

from __future__ import annotations

from repro.physics.bcs import bcs_gap, reduced_dos
from repro.physics.cooper import (
    cooper_pair_rate,
    default_linewidth,
    josephson_energy,
    validate_regime,
)
from repro.physics.cotunneling import (
    CotunnelingPath,
    cotunneling_current_t0,
    cotunneling_rate,
    default_energy_floor,
    enumerate_paths,
)
from repro.physics.fermi import bose_weight, fermi
from repro.physics.orthodox import orthodox_rate, orthodox_rates_both, threshold_voltage
from repro.physics.quasiparticle import QuasiparticleRateTable, qp_current, qp_rate
from repro.physics.rates import TunnelingModel

__all__ = [
    "CotunnelingPath",
    "QuasiparticleRateTable",
    "TunnelingModel",
    "bcs_gap",
    "bose_weight",
    "cooper_pair_rate",
    "cotunneling_current_t0",
    "cotunneling_rate",
    "default_energy_floor",
    "default_linewidth",
    "enumerate_paths",
    "fermi",
    "josephson_energy",
    "orthodox_rate",
    "orthodox_rates_both",
    "qp_current",
    "qp_rate",
    "reduced_dos",
    "threshold_voltage",
    "validate_regime",
]
