"""Steady-state master-equation (ME) solver.

The paper lists the master equation as one of the three established
simulation approaches (Sec. I): solve for the occupation probability of
every relevant charge state instead of sampling trajectories.  Its
weakness — the state space must be known in advance and explodes for
large circuits — is why SEMSIM is Monte Carlo based; its strength is
that for small devices it is *exact*, which makes it the perfect
reference for validating the MC solvers (this repo's substitute for
the paper's experimental data) and a fast evaluator for the Fig. 5
current map.

States are discovered by breadth-first exploration from the initial
charge configuration, following transitions whose rate is a meaningful
fraction of the local escape rate; the steady state solves
``pi Q = 0`` with normalisation.
"""

from __future__ import annotations

import dataclasses
from collections import deque

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.electrostatics import Electrostatics
from repro.circuit.junction_table import JunctionTable
from repro.constants import E_CHARGE
from repro.errors import SimulationError
from repro.master.transitions import Transition, enumerate_transitions
from repro.physics.rates import TunnelingModel
from repro.static import units


@dataclasses.dataclass
class MasterEquationResult:
    """Steady-state solution over the explored state space."""

    states: list[tuple[int, ...]]
    probabilities: np.ndarray
    #: mean conventional current per junction (A), node_a -> node_b positive
    junction_currents: np.ndarray


class MasterEquationSolver:
    """Exact steady-state solver for small single-electron circuits.

    Parameters
    ----------
    circuit:
        The circuit (the state space grows exponentially with islands;
        intended for devices, not the logic benchmarks).
    temperature, include_cotunneling, include_cooper_pairs, ...:
        Physics options, identical in meaning to
        :class:`repro.core.SimulationConfig`.
    max_states:
        Hard cap on explored states.
    relative_rate_cutoff:
        A transition is followed during exploration when its rate
        exceeds this fraction of the largest rate leaving its state;
        this keeps the space finite while capturing everything that
        matters for the steady state.
    occupation_bound:
        Safety bound on ``|n_i|`` per island during exploration.
    """

    @units("temperature: K, cooper_linewidth: J, cotunneling_energy_floor: J")
    def __init__(
        self,
        circuit: Circuit,
        temperature: float,
        include_cotunneling: bool = False,
        include_cooper_pairs: bool | None = None,
        cooper_linewidth: float | None = None,
        cotunneling_energy_floor: float | None = None,
        max_states: int = 4000,
        relative_rate_cutoff: float = 1e-9,
        occupation_bound: int = 12,
    ):
        self.circuit = circuit
        self.stat = Electrostatics(circuit)
        self.table = JunctionTable(circuit, self.stat)
        self.model = TunnelingModel(
            circuit,
            self.stat,
            self.table,
            temperature=temperature,
            include_cotunneling=include_cotunneling,
            include_cooper_pairs=include_cooper_pairs,
            cooper_linewidth=cooper_linewidth,
            cotunneling_energy_floor=cotunneling_energy_floor,
        )
        self.max_states = max_states
        self.relative_rate_cutoff = relative_rate_cutoff
        self.occupation_bound = occupation_bound

    # ------------------------------------------------------------------
    def explore(
        self,
        vext: np.ndarray | None = None,
        initial_occupation: np.ndarray | None = None,
    ) -> tuple[list[tuple[int, ...]], list[list[tuple[int, Transition]]]]:
        """Discover the reachable state space.

        Returns the state list and, per state, the outgoing
        ``(target_state_index, transition)`` pairs.
        """
        if vext is None:
            vext = self.circuit.external_voltages()
        if initial_occupation is None:
            initial = np.zeros(self.circuit.n_islands, dtype=np.int64)
        else:
            initial = np.asarray(initial_occupation, dtype=np.int64)

        key0 = tuple(int(x) for x in initial)
        index_of: dict[tuple[int, ...], int] = {key0: 0}
        states: list[tuple[int, ...]] = [key0]
        edges: list[list[tuple[int, Transition]]] = []
        queue: deque[int] = deque([0])

        while queue:
            s = queue.popleft()
            while len(edges) <= s:
                edges.append([])
            occupation = np.array(states[s], dtype=np.int64)
            transitions = enumerate_transitions(
                self.stat, self.table, self.model, occupation, vext
            )
            max_rate = max((t.rate for t in transitions), default=0.0)
            cutoff = max_rate * self.relative_rate_cutoff
            for transition in transitions:
                if transition.rate < cutoff:
                    continue
                new = transition.apply(occupation)
                if np.any(np.abs(new) > self.occupation_bound):
                    continue
                key = tuple(int(x) for x in new)
                target = index_of.get(key)
                if target is None:
                    if len(states) >= self.max_states:
                        continue
                    target = len(states)
                    index_of[key] = target
                    states.append(key)
                    queue.append(target)
                edges[s].append((target, transition))
        while len(edges) < len(states):
            edges.append([])
        return states, edges

    # ------------------------------------------------------------------
    def steady_state(
        self,
        vext: np.ndarray | None = None,
        initial_occupation: np.ndarray | None = None,
    ) -> MasterEquationResult:
        """Solve ``pi Q = 0`` on the explored space and fold out currents."""
        states, edges = self.explore(vext, initial_occupation)
        n = len(states)
        if n == 1:
            probabilities = np.ones(1)
        else:
            q = np.zeros((n, n))
            for s, outgoing in enumerate(edges):
                for target, transition in outgoing:
                    if target == s:
                        continue
                    q[s, target] += transition.rate
                    q[s, s] -= transition.rate
            # pi Q = 0 with sum(pi) = 1: replace the last column by ones.
            a = q.T.copy()
            a[-1, :] = 1.0
            rhs = np.zeros(n)
            rhs[-1] = 1.0
            try:
                probabilities = np.linalg.solve(a, rhs)
            except np.linalg.LinAlgError:
                # Disconnected or nearly reducible chains make the system
                # singular; the minimum-norm least-squares solution still
                # recovers a valid stationary distribution on the
                # recurrent class reachable from the initial state.
                probabilities, *_ = np.linalg.lstsq(a, rhs, rcond=None)
            probabilities = np.clip(probabilities, 0.0, None)
            total = probabilities.sum()
            if total <= 0.0:
                raise SimulationError("steady-state probabilities degenerate")
            probabilities /= total

        currents = np.zeros(self.circuit.n_junctions)
        for s, outgoing in enumerate(edges):
            for _, transition in outgoing:
                for junction, electrons in transition.flux:
                    currents[junction] += (
                        probabilities[s] * transition.rate * electrons
                    )
        currents *= -E_CHARGE
        return MasterEquationResult(states, probabilities, currents)

    # ------------------------------------------------------------------
    @units("-> A")
    def current(
        self,
        junction: int,
        vext: np.ndarray | None = None,
        orientation: int = 1,
    ) -> float:
        """Steady-state current through one junction (A)."""
        result = self.steady_state(vext)
        return orientation * float(result.junction_currents[junction])

    # ------------------------------------------------------------------
    @units("times: s")
    def transient(
        self,
        times: np.ndarray,
        vext: np.ndarray | None = None,
        initial_occupation: np.ndarray | None = None,
    ) -> "TransientResult":
        """Exact time evolution ``p(t) = p(0) expm(Q t)``.

        Valid for small state spaces (the generator is exponentiated
        densely); used to validate the Monte Carlo relaxation dynamics
        — the MC trajectory ensemble must reproduce these occupation
        probabilities at every time point.
        """
        from scipy.linalg import expm

        times = np.asarray(times, dtype=float)
        if np.any(times < 0.0):
            raise SimulationError("transient times must be >= 0")
        states, edges = self.explore(vext, initial_occupation)
        n = len(states)
        generator = np.zeros((n, n))
        for s, outgoing in enumerate(edges):
            for target, transition in outgoing:
                if target == s:
                    continue
                generator[s, target] += transition.rate
                generator[s, s] -= transition.rate
        p0 = np.zeros(n)
        p0[0] = 1.0
        probabilities = np.empty((len(times), n))
        for i, t in enumerate(times):
            probabilities[i] = p0 @ expm(generator * t)
        probabilities = np.clip(probabilities, 0.0, None)
        probabilities /= probabilities.sum(axis=1, keepdims=True)
        return TransientResult(states, times, probabilities)


@dataclasses.dataclass
class TransientResult:
    """Occupation probabilities over time for the explored states."""

    states: list[tuple[int, ...]]
    times: np.ndarray
    #: shape (len(times), len(states))
    probabilities: np.ndarray

    def probability_of(self, state: tuple[int, ...]) -> np.ndarray:
        """Probability trace of one charge state."""
        try:
            index = self.states.index(state)
        except ValueError:
            raise SimulationError(f"state {state} not in the explored space")
        return self.probabilities[:, index]

    def mean_occupation(self, island: int) -> np.ndarray:
        """Expected electron count on ``island`` versus time."""
        values = np.array([state[island] for state in self.states], dtype=float)
        return self.probabilities @ values
