"""Enumeration of all tunnel transitions out of a charge state.

Shared by the master-equation solver (which needs the full generator)
and by tests that cross-check the Monte Carlo solvers' rate assembly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuit.electrostatics import Electrostatics
from repro.circuit.junction_table import JunctionTable
from repro.constants import E_CHARGE
from repro.physics.rates import TunnelingModel
from repro.static import array_contract, units


@dataclasses.dataclass(frozen=True)
class Transition:
    """One outgoing transition from a charge state.

    ``d_occupation`` is the occupation change per island (sparse dict);
    ``flux`` maps junction index to signed electron count (+ = the
    junction's ``node_a -> node_b`` direction), used for steady-state
    current bookkeeping.
    """

    kind: str
    rate: float
    d_occupation: tuple[tuple[int, int], ...]
    flux: tuple[tuple[int, int], ...]
    dw: float

    @array_contract(occupation="(n_islands,) int64", out="(n_islands,) int64")
    def apply(self, occupation: np.ndarray) -> np.ndarray:
        new = occupation.copy()
        for island, delta in self.d_occupation:
            new[island] += delta
        return new


def _transfer(ref_a, ref_b, n_electrons: int) -> tuple[tuple[int, int], ...]:
    changes: dict[int, int] = {}
    if ref_a.is_island:
        changes[ref_a.index] = changes.get(ref_a.index, 0) - n_electrons
    if ref_b.is_island:
        changes[ref_b.index] = changes.get(ref_b.index, 0) + n_electrons
    return tuple(sorted(changes.items()))


@units("occupation: 1, vext: V")
@array_contract(occupation="(n_islands,) int64", vext="(n_external,) float64")
def enumerate_transitions(
    stat: Electrostatics,
    table: JunctionTable,
    model: TunnelingModel,
    occupation: np.ndarray,
    vext: np.ndarray,
) -> list[Transition]:
    """All transitions (with rates) out of ``occupation``.

    Includes sequential single-electron events, and — when the model
    enables them — Cooper-pair and cotunneling events, mirroring
    exactly the channels the Monte Carlo solvers draw from.
    """
    v = stat.potentials(occupation, vext)
    resolved = model.circuit.resolved_junctions()
    out: list[Transition] = []

    dw_fw, dw_bw = table.free_energy_changes(v, vext)
    seq_fw, seq_bw = model.sequential_rates(dw_fw, dw_bw)
    for j, rj in enumerate(resolved):
        if seq_fw[j] > 0.0:
            out.append(
                Transition(
                    "sequential", float(seq_fw[j]),
                    _transfer(rj.ref_a, rj.ref_b, 1), ((j, +1),), float(dw_fw[j]),
                )
            )
        if seq_bw[j] > 0.0:
            out.append(
                Transition(
                    "sequential", float(seq_bw[j]),
                    _transfer(rj.ref_b, rj.ref_a, 1), ((j, -1),), float(dw_bw[j]),
                )
            )

    if model.include_cooper_pairs:
        cp_dw_fw, cp_dw_bw = table.free_energy_changes(v, vext, dq=-2.0 * E_CHARGE)
        cp_fw, cp_bw = model.cooper_pair_rates(cp_dw_fw, cp_dw_bw)
        for j, rj in enumerate(resolved):
            if cp_fw[j] > 0.0:
                out.append(
                    Transition(
                        "cooper_pair", float(cp_fw[j]),
                        _transfer(rj.ref_a, rj.ref_b, 2), ((j, +2),),
                        float(cp_dw_fw[j]),
                    )
                )
            if cp_bw[j] > 0.0:
                out.append(
                    Transition(
                        "cooper_pair", float(cp_bw[j]),
                        _transfer(rj.ref_b, rj.ref_a, 2), ((j, -2),),
                        float(cp_dw_bw[j]),
                    )
                )

    if model.include_cotunneling:
        for path in model.paths:
            dw_total = stat.free_energy_change(path.ref_a, path.ref_b, v, vext)
            e1 = stat.free_energy_change(path.ref_a, path.ref_m, v, vext)
            e2 = stat.free_energy_change(path.ref_m, path.ref_b, v, vext)
            rate = model.cotunneling_rate_for_path(path, dw_total, e1, e2)
            if rate > 0.0:
                out.append(
                    Transition(
                        "cotunneling", float(rate),
                        _transfer(path.ref_a, path.ref_b, 1),
                        (
                            (path.junction_in, path.direction_in),
                            (path.junction_out, path.direction_out),
                        ),
                        float(dw_total),
                    )
                )
    return out
