"""Master-equation reference solver (exact for small devices)."""

from __future__ import annotations

from repro.master.solver import (
    MasterEquationResult,
    MasterEquationSolver,
    TransientResult,
)
from repro.master.transitions import Transition, enumerate_transitions

__all__ = [
    "MasterEquationResult",
    "MasterEquationSolver",
    "Transition",
    "TransientResult",
    "enumerate_transitions",
]
