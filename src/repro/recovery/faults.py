"""Test-only fault injection for the resilient shard pool.

A :class:`FaultPlan` describes misbehaviour to stage — *kill shard i on
attempt j*, *hang past the shard timeout*, *raise mid-worker* — and is
installed process-wide with :func:`injected_faults`.  The pool threads
the matching :class:`FaultSpec` into each shard submission, and the
subprocess entry calls :func:`perform` before running the real worker,
so every recovery path (dead worker, timeout, raised exception,
retry-until-exhaustion) is drivable from pytest without monkeypatching
executor internals.

Nothing in production code ever installs a plan; with no plan installed
the per-shard lookup is a single ``None`` check.  The plan lives only
in the installing process — worker subprocesses receive their fault as
part of the submission, never via inherited module state — so fork/
spawn start methods behave identically.
"""

from __future__ import annotations

import base64
import contextlib
import dataclasses
import json
import os
import time
from collections.abc import Iterator
from pathlib import Path

from repro.errors import RecoveryError, SimulationError

_ACTIONS = ("kill", "raise", "hang")

#: exit status used by ``kill`` faults — mirrors a worker dying on
#: SIGKILL closely enough that ProcessPoolExecutor marks the pool broken
_KILL_EXIT = 113


class InjectedFault(RecoveryError):
    """The exception a ``raise`` fault throws inside a worker."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One staged misbehaviour: ``action`` on ``shard`` for ``attempts``.

    ``attempts`` lists the 1-based attempt numbers the fault fires on;
    empty means *every* attempt (useful for exhaustion tests).
    ``delay`` is the hang duration in seconds for ``action="hang"``.
    """

    shard: int
    action: str
    attempts: tuple[int, ...] = (1,)
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise SimulationError(
                f"unknown fault action {self.action!r}; expected one of {_ACTIONS}"
            )
        if self.shard < 0:
            raise SimulationError(f"fault shard index must be >= 0, got {self.shard}")

    def fires_on(self, attempt: int) -> bool:
        return not self.attempts or attempt in self.attempts


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` records."""

    faults: tuple[FaultSpec, ...] = ()

    def spec_for(self, shard: int, attempt: int) -> FaultSpec | None:
        """The first fault staged for ``(shard, attempt)``, if any."""
        for spec in self.faults:
            if spec.shard == shard and spec.fires_on(attempt):
                return spec
        return None


_PLAN: FaultPlan | None = None


def install_faults(plan: FaultPlan) -> None:
    """Arm ``plan`` for subsequent ``execute_shards`` calls."""
    global _PLAN
    _PLAN = plan


def clear_faults() -> None:
    """Disarm any installed plan."""
    global _PLAN
    _PLAN = None


def current_plan() -> FaultPlan | None:
    """The installed plan, or ``None`` (the production state)."""
    return _PLAN


@contextlib.contextmanager
def injected_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager: install ``plan``, always disarm on exit."""
    install_faults(plan)
    try:
        yield plan
    finally:
        clear_faults()


def perform(spec: FaultSpec, inline: bool = False) -> None:
    """Execute a staged fault at the top of a shard attempt.

    ``kill`` exits the worker process without cleanup, which the parent
    observes as :class:`~concurrent.futures.process.BrokenProcessPool`;
    inline (no subprocess to kill) it raises instead.  ``hang`` sleeps
    ``delay`` seconds and then lets the shard continue — pair it with a
    ``shard_timeout`` shorter than the delay to exercise the deadline
    path.  ``raise`` throws :class:`InjectedFault`.
    """
    if spec.action == "hang":
        time.sleep(spec.delay)
        return
    if spec.action == "kill" and not inline:
        os._exit(_KILL_EXIT)
    raise InjectedFault(
        f"injected fault: {spec.action} shard #{spec.shard}", shard=spec.shard
    )


def corrupt_record(directory: str | Path, shard: int) -> None:
    """Flip bits in shard ``shard``'s checkpointed payload on disk.

    Test helper for the manifest-integrity path: the checksum stays
    untouched while the payload bytes change, so a subsequent resume
    must reject the record with :class:`RecoveryError`.
    """
    path = Path(directory) / "manifest.json"
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        record = data["shards"][shard]
        raw = bytearray(base64.b64decode(record["payload"]))
    except (OSError, ValueError, KeyError, IndexError, TypeError) as exc:
        raise RecoveryError(
            f"cannot corrupt checkpoint record #{shard} under {directory}: {exc}"
        ) from exc
    if not raw:
        raise RecoveryError(f"checkpoint record #{shard} has no payload to corrupt")
    raw[len(raw) // 2] ^= 0xFF
    record["payload"] = base64.b64encode(bytes(raw)).decode("ascii")
    path.write_text(json.dumps(data), encoding="utf-8")
