"""Fault-tolerant, checkpointed execution for sharded runs.

Long Monte Carlo campaigns die for boring reasons — a worker OOMs, a
node reboots, someone hits Ctrl-C — and without this layer one dead
process throws away hours of ``sweep_map``/``ensemble_iv`` work.  This
package makes sharded execution survivable without touching its
reproducibility contract:

* :class:`ExecutionPolicy` — bounded retry with capped deterministic
  backoff, per-shard timeouts, pool rebuild limits and inline
  degradation, consumed by :func:`repro.parallel.pool.execute_shards`;
* :class:`CheckpointStore` / :class:`CheckpointSession` — an atomic,
  versioned, fingerprinted manifest of completed shard results, written
  as each shard finishes and consumed by ``--resume``;
* :class:`FaultPlan` / :func:`injected_faults` — test-only fault
  injection (kill/hang/raise per shard per attempt) so every recovery
  path is exercised by pytest rather than trusted.

The invariant everything here preserves: a retried shard re-runs with
its own spawned seed and a resumed run replays stored results in shard
order, so retries, rebuilds and resumes are all bit-identical to an
uninterrupted run — same arrays, same fold-order combined dsan event
hash.  Failures surface as :class:`repro.errors.RecoveryError` with the
worker's exception as ``__cause__``.
"""

from __future__ import annotations

from repro.errors import RecoveryError
from repro.recovery.checkpoint import CheckpointSession, CheckpointStore
from repro.recovery.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    clear_faults,
    corrupt_record,
    current_plan,
    injected_faults,
    install_faults,
)
from repro.recovery.manifest import (
    MANIFEST_VERSION,
    Manifest,
    ShardRecord,
    describe_version_skew,
    environment_meta,
)
from repro.recovery.policy import ExecutionPolicy

__all__ = [
    "MANIFEST_VERSION",
    "CheckpointSession",
    "CheckpointStore",
    "ExecutionPolicy",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "Manifest",
    "RecoveryError",
    "ShardRecord",
    "clear_faults",
    "corrupt_record",
    "current_plan",
    "describe_version_skew",
    "environment_meta",
    "injected_faults",
    "install_faults",
]
