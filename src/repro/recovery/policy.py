"""Retry/timeout policy for fault-tolerant shard execution.

An :class:`ExecutionPolicy` is plain data: how many attempts each shard
gets, how long a pooled shard may run, how retries back off, and when
the pool gives up on subprocesses altogether and degrades to inline
execution.  The policy never touches results — a retried shard re-runs
with the *same* payload (and therefore the same spawned seed, see
:mod:`repro.parallel.seeds`), so a successful retry is bit-identical to
a first-attempt success and the fold-order combined event hash is
unaffected by how many times any shard crashed along the way.
"""

from __future__ import annotations

import dataclasses

from repro.errors import SimulationError


@dataclasses.dataclass(frozen=True)
class ExecutionPolicy:
    """How :func:`repro.parallel.pool.execute_shards` handles failure.

    ``max_attempts``
        Total tries per shard (first run + retries).  ``1`` disables
        retry.
    ``shard_timeout``
        Wall-clock seconds a pooled shard may run before it is charged
        a failed attempt and its worker pool is rebuilt; ``None``
        disables the deadline.  Ignored on the inline path, which
        cannot preempt a running shard.
    ``backoff_base`` / ``backoff_cap``
        Deterministic exponential backoff before attempt ``n``:
        ``min(backoff_base * 2**(n - 2), backoff_cap)`` seconds — no
        jitter, so a retried run sleeps the same schedule every time.
    ``max_pool_rebuilds``
        How many times a broken/timed-out pool is rebuilt before the
        remaining shards degrade to inline execution (when
        ``inline_fallback``) or the run fails.
    ``retry_raised``
        Also retry shards whose worker *raised* (not just died or timed
        out).  Off by default: an in-process exception is normally a
        deterministic bug that retrying cannot fix, and the historical
        contract is that it propagates to the caller unchanged.
    """

    max_attempts: int = 3
    shard_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    max_pool_rebuilds: int = 3
    inline_fallback: bool = True
    retry_raised: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise SimulationError(
                f"shard_timeout must be positive, got {self.shard_timeout}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise SimulationError("backoff durations must be >= 0")
        if self.max_pool_rebuilds < 0:
            raise SimulationError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    def backoff_delay(self, attempt: int) -> float:
        """Seconds to sleep before running ``attempt`` (2-based)."""
        if attempt <= 1:
            return 0.0
        return min(self.backoff_base * 2.0 ** (attempt - 2), self.backoff_cap)
