"""Durable checkpoint store for sharded runs.

:class:`CheckpointStore` owns a directory; :meth:`CheckpointStore.begin`
binds it to one concrete sharded run (worker + payloads) and returns a
:class:`CheckpointSession` the pool drives: completed shards are
recorded as they finish, and on resume the previously completed shards
come back decoded so the pool can skip them.

Durability contract: the manifest is rewritten atomically (temp file +
``os.replace`` in the same directory) after every completed shard, so a
crash at any instant leaves either the previous or the next manifest on
disk — never a torn one.  Resume is *strict*: the stored fingerprint
must match the run being resumed (same deck/config, seeds, shard
layout, worker), the manifest version must match, and every reused
record must pass its checksum.  Anything else raises
:class:`RecoveryError` rather than silently mixing two experiments.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path
from typing import Any, Callable

from repro.errors import RecoveryError
from repro.recovery.manifest import (
    Manifest,
    decode_result,
    describe_version_skew,
)

_MANIFEST_NAME = "manifest.json"


class CheckpointStore:
    """A checkpoint directory, plus the resume/overwrite intent.

    ``resume=False`` (the default) starts the run from scratch: any
    manifest already in the directory is overwritten.  ``resume=True``
    requires a manifest to exist and to match the run's fingerprint.
    The directory is created (and probed for writability) eagerly, so
    an unusable ``--checkpoint`` path fails before any simulation work.
    """

    def __init__(self, directory: str | Path, *, resume: bool = False):
        self.directory = Path(directory)
        self.resume = resume
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            probe = self.directory / ".write-probe"
            probe.write_bytes(b"")
            probe.unlink()
        except OSError as exc:
            raise RecoveryError(
                f"checkpoint directory {self.directory} is not writable: {exc}"
            ) from exc

    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST_NAME

    def begin(
        self,
        worker: Callable[..., Any],
        payloads: list[Any],
        meta: dict[str, Any] | None = None,
    ) -> CheckpointSession:
        """Bind the store to one run; load or initialise the manifest."""
        fresh = Manifest.fresh(worker, payloads, meta)
        if not self.resume:
            session = CheckpointSession(self, fresh)
            session.flush()
            return session
        if not self.manifest_path.is_file():
            raise RecoveryError(
                f"--resume requested but no checkpoint manifest exists at "
                f"{self.manifest_path}"
            )
        try:
            text = self.manifest_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise RecoveryError(
                f"cannot read checkpoint manifest {self.manifest_path}: {exc}"
            ) from exc
        stored = Manifest.from_json(text, source=str(self.manifest_path))
        if len(stored.shards) != len(payloads):
            raise RecoveryError(
                f"checkpoint at {self.directory} describes "
                f"{len(stored.shards)} shard(s) but this run has "
                f"{len(payloads)} — shard layout changed"
            )
        if stored.fingerprint != fresh.fingerprint:
            # pickle-based fingerprints are only comparable under the
            # interpreter/numpy that wrote them — say *which* kind of
            # drift this is, so users don't delete valid checkpoints
            # blindly
            skew = describe_version_skew(stored.meta)
            if skew:
                detail = (
                    f"environment version skew ({skew}); run fingerprints "
                    "hash pickle bytes and are only comparable under the "
                    "same Python and numpy versions — the checkpoint "
                    "itself may be intact, but it cannot be verified "
                    "against this interpreter; re-run under the original "
                    "versions or start fresh without --resume"
                )
            else:
                detail = (
                    "same Python/numpy versions, so the workload itself "
                    "changed: deck, config, seed or shard layout differ "
                    "from the run that wrote the checkpoint"
                )
            raise RecoveryError(
                f"checkpoint at {self.directory} belongs to a different run "
                f"(fingerprint {stored.fingerprint} != {fresh.fingerprint}): "
                f"{detail}"
            )
        return CheckpointSession(self, stored)


@dataclasses.dataclass
class CheckpointSession:
    """One run's live binding to its checkpoint manifest."""

    store: CheckpointStore
    manifest: Manifest

    def completed(self) -> dict[int, Any]:
        """Decode every stored shard result, keyed by shard index.

        Checksums are verified here, at resume time, so corruption is
        reported before any fresh simulation work starts.
        """
        results: dict[int, Any] = {}
        for shard, record in enumerate(self.manifest.shards):
            if record is not None:
                results[shard] = decode_result(
                    record.payload, record.checksum, shard
                )
        return results

    def record(self, shard: int, result: Any) -> None:
        """Persist one completed shard and atomically rewrite the manifest."""
        event_hash = getattr(result, "event_hash", None)
        self.manifest.record(shard, result, event_hash)
        self.flush()

    def flush(self) -> None:
        path = self.store.manifest_path
        tmp = path.with_name(path.name + ".tmp")
        try:
            tmp.write_text(self.manifest.to_json(), encoding="utf-8")
            os.replace(tmp, path)
        except OSError as exc:
            raise RecoveryError(
                f"cannot write checkpoint manifest {path}: {exc}"
            ) from exc
