"""Versioned checkpoint manifest: fingerprints, records, serialization.

A manifest is one JSON document describing a sharded run in flight:

* a **run fingerprint** — blake2b over the worker's identity and the
  pickled shard payloads (which embed the deck/config and every
  spawned ``SeedSequence``), so a checkpoint can only ever be resumed
  by the byte-identical run that wrote it;
* one **record per completed shard** — status, the pickled result
  (base64), a checksum of the raw pickle, the shard's dsan
  event-stream hash when hashing was on, and a human-readable seed
  description for post-mortems.

Payload pickles are deterministic across processes and
``PYTHONHASHSEED`` values for the dataclass/ndarray payloads the sweep
layer produces, which is what makes the pickle-based fingerprint a
sound cross-process identity.  Any mismatch — version, fingerprint,
shard count, checksum — is a :class:`RecoveryError`, never a silent
partial reuse.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import pickle
import platform
from typing import Any, Callable

import numpy as np

from repro.errors import RecoveryError
from repro.parallel.seeds import describe_seed as _describe_seed

MANIFEST_VERSION = 1

#: Environment facts recorded in every manifest's ``meta``.  The run
#: fingerprint hashes *pickle bytes*, which are only comparable under
#: the same interpreter and numpy — recording both lets a resume
#: failure say "version skew" instead of a bare mismatch.
ENVIRONMENT_KEYS = ("python", "numpy")


def environment_meta() -> dict[str, str]:
    """The interpreter/numpy versions a manifest is written under."""
    return {"python": platform.python_version(), "numpy": np.__version__}


def describe_version_skew(
    stored: dict[str, Any], current: dict[str, Any] | None = None
) -> str:
    """Human-readable environment drift between a stored manifest's
    ``meta`` and the current process, e.g. ``"python 3.10.2 -> 3.12.1"``.

    Returns an empty string when every recorded version matches (or the
    manifest predates version recording), so callers can distinguish
    *payload* changes from *environment* changes.
    """
    env = current if current is not None else environment_meta()
    drifted = []
    for key in ENVIRONMENT_KEYS:
        recorded = stored.get(key)
        if recorded is not None and str(recorded) != str(env.get(key)):
            drifted.append(f"{key} {recorded} -> {env.get(key)}")
    return ", ".join(drifted)

_DIGEST_SIZE = 16

_STATUS_DONE = "done"


def _digest(raw: bytes) -> str:
    return hashlib.blake2b(raw, digest_size=_DIGEST_SIZE).hexdigest()


def fingerprint_run(worker: Callable[..., Any], payloads: list[Any]) -> str:
    """Identity of a sharded run: worker name + pickled payloads."""
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(f"{worker.__module__}.{worker.__qualname__}".encode())
    h.update(f":{len(payloads)}:".encode())
    for payload in payloads:
        try:
            raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:  # repro-lint: allow — pickle raises arbitrary types
            raise RecoveryError(
                f"cannot fingerprint shard payload for checkpointing: {exc}"
            ) from exc
        h.update(_digest(raw).encode("ascii"))
    return h.hexdigest()


def payload_seed(payload: Any) -> str | None:
    """Human-readable seed of a shard payload, for the manifest."""
    config = getattr(payload, "config", None)
    seed = getattr(config, "seed", None)
    if seed is None:
        return None
    return _describe_seed(seed)


def encode_result(result: Any) -> tuple[str, str]:
    """Pickle ``result``; return ``(base64 payload, checksum)``."""
    try:
        raw = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # repro-lint: allow — pickle raises arbitrary types
        raise RecoveryError(
            f"shard result of type {type(result).__name__} cannot be "
            f"checkpointed: {exc}"
        ) from exc
    return base64.b64encode(raw).decode("ascii"), _digest(raw)


def decode_result(payload: str, checksum: str, shard: int) -> Any:
    """Inverse of :func:`encode_result`; integrity failures are fatal."""
    try:
        raw = base64.b64decode(payload.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise RecoveryError(
            f"checkpoint record #{shard} payload is not valid base64", shard=shard
        ) from exc
    if _digest(raw) != checksum:
        raise RecoveryError(
            f"checkpoint record #{shard} is corrupt: payload checksum mismatch",
            shard=shard,
        )
    try:
        return pickle.loads(raw)
    except Exception as exc:  # repro-lint: allow — pickle raises arbitrary types
        raise RecoveryError(
            f"checkpoint record #{shard} cannot be unpickled: {exc}", shard=shard
        ) from exc


@dataclasses.dataclass
class ShardRecord:
    """One completed shard as stored in the manifest."""

    status: str
    payload: str
    checksum: str
    event_hash: str | None = None
    seed: str | None = None

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict[str, Any], shard: int) -> ShardRecord:
        try:
            record = cls(
                status=str(data["status"]),
                payload=str(data["payload"]),
                checksum=str(data["checksum"]),
                event_hash=data.get("event_hash"),
                seed=data.get("seed"),
            )
        except (KeyError, TypeError) as exc:
            raise RecoveryError(
                f"checkpoint record #{shard} is malformed: {exc}", shard=shard
            ) from exc
        if record.status != _STATUS_DONE:
            raise RecoveryError(
                f"checkpoint record #{shard} has unknown status "
                f"{record.status!r}",
                shard=shard,
            )
        return record


@dataclasses.dataclass
class Manifest:
    """The on-disk checkpoint document for one sharded run."""

    fingerprint: str
    shards: list[ShardRecord | None]
    meta: dict[str, Any] = dataclasses.field(default_factory=dict)
    version: int = MANIFEST_VERSION

    @classmethod
    def fresh(
        cls,
        worker: Callable[..., Any],
        payloads: list[Any],
        meta: dict[str, Any] | None = None,
    ) -> Manifest:
        info = dict(meta or {})
        info.setdefault("worker", f"{worker.__module__}.{worker.__qualname__}")
        for key, value in environment_meta().items():
            info.setdefault(key, value)
        seeds = [payload_seed(payload) for payload in payloads]
        if any(seed is not None for seed in seeds):
            info.setdefault("seeds", seeds)
        return cls(
            fingerprint=fingerprint_run(worker, payloads),
            shards=[None] * len(payloads),
            meta=info,
        )

    @property
    def completed(self) -> int:
        return sum(1 for record in self.shards if record is not None)

    def record(self, shard: int, result: Any, event_hash: str | None) -> None:
        payload, checksum = encode_result(result)
        self.shards[shard] = ShardRecord(
            status=_STATUS_DONE,
            payload=payload,
            checksum=checksum,
            event_hash=event_hash,
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": self.version,
                "fingerprint": self.fingerprint,
                "meta": self.meta,
                "shards": [
                    record.to_json() if record is not None else None
                    for record in self.shards
                ],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str, source: str = "manifest") -> Manifest:
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise RecoveryError(f"{source} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise RecoveryError(f"{source} is not a JSON object")
        version = data.get("version")
        if version != MANIFEST_VERSION:
            raise RecoveryError(
                f"{source} has manifest version {version!r}; this build "
                f"reads version {MANIFEST_VERSION}"
            )
        fingerprint = data.get("fingerprint")
        shards = data.get("shards")
        if not isinstance(fingerprint, str) or not isinstance(shards, list):
            raise RecoveryError(f"{source} is missing fingerprint/shards")
        records: list[ShardRecord | None] = []
        for shard, entry in enumerate(shards):
            if entry is None:
                records.append(None)
            elif isinstance(entry, dict):
                records.append(ShardRecord.from_json(entry, shard))
            else:
                raise RecoveryError(
                    f"checkpoint record #{shard} is malformed: expected an "
                    f"object or null, got {type(entry).__name__}",
                    shard=shard,
                )
        meta = data.get("meta")
        return cls(
            fingerprint=fingerprint,
            shards=records,
            meta=meta if isinstance(meta, dict) else {},
        )
