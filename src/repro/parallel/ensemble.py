"""N-replica ensemble Monte Carlo runs with merged statistics.

A single MC sweep is one noisy realisation; the SIMON-style ensemble
methodology repeats the experiment N times with independent seeds and
averages.  Each replica is a shard: its seed is spawned from the root
config seed by replica index, so the ensemble is bit-reproducible for
any worker count, and replica r of an N-replica run is always the same
simulation.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.monitor.ledger import run_scope
from repro.parallel.pool import execute_shards
from repro.parallel.seeds import spawn_seeds
from repro.recovery.checkpoint import CheckpointStore
from repro.recovery.policy import ExecutionPolicy
from repro.telemetry import registry as _telemetry

if TYPE_CHECKING:  # deferred: repro.core.sweep imports repro.parallel
    from repro.campaign.store import CampaignStore
    from repro.circuit.circuit import Circuit
    from repro.core.base import SolverStats
    from repro.core.config import SimulationConfig
    from repro.core.sweep import IVCurve


@dataclasses.dataclass
class EnsembleIV:
    """Stacked I-V replicas plus their merged solver work."""

    voltages: np.ndarray
    #: shape (replicas, len(voltages))
    replica_currents: np.ndarray
    label: str = ""
    stats: "SolverStats | None" = dataclasses.field(
        default=None, compare=False, repr=False
    )
    #: order-sensitive fold of the per-replica event-stream digests
    #: (``None`` unless the ensemble ran with ``event_hash=True``)
    event_hash: str | None = dataclasses.field(
        default=None, compare=False, repr=False
    )

    @property
    def replicas(self) -> int:
        return int(self.replica_currents.shape[0])

    @property
    def mean_currents(self) -> np.ndarray:
        return self.replica_currents.mean(axis=0)

    @property
    def std_currents(self) -> np.ndarray:
        """Per-point standard error of the ensemble mean."""
        n = max(self.replicas, 1)
        return self.replica_currents.std(axis=0, ddof=1 if n > 1 else 0) / np.sqrt(n)

    def mean_curve(self) -> "IVCurve":
        """The ensemble-averaged curve as a plain :class:`IVCurve`."""
        from repro.core.sweep import IVCurve

        return IVCurve(
            self.voltages, self.mean_currents, self.label,
            stats=self.stats, event_hash=self.event_hash,
        )


@dataclasses.dataclass
class _Replica:
    """One ensemble member: a full serial I-V sweep with its own seed."""

    index: int
    circuit: "Circuit"
    config: "SimulationConfig"
    voltages: np.ndarray
    jumps_per_point: int
    junctions: list[int]
    orientations: list[int] | None
    source_setter: "Callable[[float], dict[str, Any]] | None"


def _run_replica(replica: _Replica) -> "IVCurve":
    # deferred import: repro.core.sweep itself imports repro.parallel
    from repro.core.sweep import sweep_iv

    return sweep_iv(
        replica.circuit,
        replica.voltages,
        replica.config,
        jumps_per_point=replica.jumps_per_point,
        measure_junctions=replica.junctions,
        orientations=replica.orientations,
        source_setter=replica.source_setter,
        label=f"replica {replica.index}",
    )


def ensemble_iv(
    circuit: "Circuit",
    voltages: Sequence[float],
    replicas: int,
    config: "SimulationConfig | None" = None,
    jumps_per_point: int = 4000,
    measure_junctions: Sequence[int] = (0,),
    orientations: Sequence[int] | None = None,
    source_setter: "Callable[[float], dict[str, Any]] | None" = None,
    label: str = "",
    *,
    jobs: int | None = 1,
    checkpoint: CheckpointStore | None = None,
    policy: ExecutionPolicy | None = None,
    campaign: "CampaignStore | str | Path | None" = None,
) -> EnsembleIV:
    """Run ``replicas`` independent I-V sweeps and stack the results.

    Replica ``r`` always simulates with the seed spawned at index ``r``
    from ``config.seed``, so the ensemble is deterministic and
    bit-identical for every ``jobs`` value; ``jobs`` distributes the
    replicas over worker processes.  ``checkpoint`` persists each
    completed replica's curve to a resumable manifest; ``policy`` adds
    per-replica retry/timeout fault tolerance; ``campaign`` caches
    completed replica curves in the durable content-addressed store
    (forcing event hashing), so re-running the ensemble — or a larger
    one sharing its root seed — computes only new replicas.
    """
    from repro.core.config import SimulationConfig

    if replicas < 1:
        raise SimulationError(f"replicas must be >= 1, got {replicas}")
    cfg = config if config is not None else SimulationConfig()
    if campaign is not None:
        cfg = cfg.replace(event_hash=True)
    volts = np.asarray(voltages, dtype=float)
    seeds = spawn_seeds(cfg.seed, replicas)
    shards = [
        _Replica(
            index=r,
            circuit=circuit,
            config=cfg.replace(seed=seeds[r]),
            voltages=volts,
            jumps_per_point=jumps_per_point,
            junctions=list(measure_junctions),
            orientations=list(orientations) if orientations is not None else None,
            source_setter=source_setter,
        )
        for r in range(replicas)
    ]
    cache = None
    if campaign is not None:
        from repro.campaign.store import bind_sweep_cache

        cache = bind_sweep_cache(
            campaign, circuit, cfg, kind="ensemble_iv",
            values=volts, jumps_per_point=jumps_per_point, label=label,
        )
    with run_scope("ensemble_iv") as recorder:
        with _telemetry.span(
            "ensemble.iv", category="parallel",
            replicas=replicas, points=len(volts), label=label,
        ):
            curves = execute_shards(
                _run_replica, shards, jobs=jobs,
                policy=policy, checkpoint=checkpoint, cache=cache,
            )
        from repro.core.base import SolverStats

        stats = SolverStats().merge(
            *(c.stats for c in curves if c.stats is not None)
        )
        hashes = [c.event_hash for c in curves]
        if any(h is None for h in hashes):
            combined = None
        else:
            from repro.dsan.runtime import fold_hashes

            combined = fold_hashes([h for h in hashes if h is not None])
        ensemble = EnsembleIV(
            volts,
            np.vstack([c.currents for c in curves]),
            label,
            stats=stats,
            event_hash=combined,
        )
        if recorder is not None:
            recorder.commit(
                circuit=circuit, config=cfg, values=volts,
                jumps_per_point=jumps_per_point, label=label,
                jobs=jobs, replicas=replicas,
                stats=stats, event_hash=combined,
            )
    return ensemble
