"""Deterministic seed derivation for sharded runs.

Every shard (a ``sweep_map`` gate row, a ``sweep_iv`` voltage chunk,
an ensemble replica) gets its own ``numpy.random.SeedSequence`` child,
derived *statelessly* from the run's root seed and the shard index.
Two invariants follow:

* the stream a shard draws depends only on ``(root seed, shard
  index)`` — never on worker count or scheduling order, so parallel
  results are bit-reproducible;
* distinct shards get statistically independent streams (the
  ``SeedSequence.spawn`` guarantee), fixing the correlated-noise bug
  where every ``sweep_map`` row replayed the same RNG stream.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


def as_seed_sequence(seed: int | np.random.SeedSequence) -> np.random.SeedSequence:
    """Coerce an integer or ``SeedSequence`` seed to a ``SeedSequence``."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise SimulationError(f"seed must be >= 0, got {seed}")
        return np.random.SeedSequence(int(seed))
    raise SimulationError(
        "seed must be an int or numpy.random.SeedSequence, "
        f"got {type(seed).__name__}"
    )


def describe_seed(seed: int | np.random.SeedSequence) -> str:
    """Human-readable identity of a seed, for checkpoint manifests.

    A spawned child renders as ``entropy=<root> spawn_key=(i,)`` — the
    exact coordinates :func:`spawn_seeds` would use to re-derive it, so
    a manifest reader can verify which shard a record belongs to.
    """
    if isinstance(seed, np.random.SeedSequence):
        return f"entropy={seed.entropy} spawn_key={tuple(seed.spawn_key)}"
    return repr(seed)


def spawn_seed_at(
    seed: int | np.random.SeedSequence, key: tuple[int, ...]
) -> np.random.SeedSequence:
    """The child of ``seed`` at an explicit spawn-key coordinate.

    :func:`spawn_seeds` indexes children positionally, which ties a
    shard's stream to its position in one particular grid.  The
    campaign layer instead derives ``key`` from the *content* of a cell
    (parameter point and replica index), so the same physical cell
    draws the same stream in every grid that contains it — the property
    that makes cached cells reusable across overlapping sweeps.
    """
    for part in key:
        if part < 0:
            raise SimulationError(f"spawn-key parts must be >= 0, got {part}")
    root = as_seed_sequence(seed)
    entropy = root.entropy if root.entropy is not None else 0
    return np.random.SeedSequence(
        entropy=entropy,
        spawn_key=tuple(root.spawn_key) + tuple(int(part) for part in key),
        pool_size=root.pool_size,
    )


def spawn_seeds(
    seed: int | np.random.SeedSequence, n: int
) -> list[np.random.SeedSequence]:
    """``n`` independent child seeds of ``seed``, statelessly.

    Equivalent to ``SeedSequence(seed).spawn(n)`` on a fresh root, but
    without mutating ``seed``'s spawn counter when a ``SeedSequence``
    instance is passed — calling this twice with the same arguments
    always returns the same children.
    """
    if n < 0:
        raise SimulationError(f"cannot spawn {n} seeds")
    root = as_seed_sequence(seed)
    entropy = root.entropy if root.entropy is not None else 0
    return [
        np.random.SeedSequence(
            entropy=entropy,
            spawn_key=tuple(root.spawn_key) + (i,),
            pool_size=root.pool_size,
        )
        for i in range(n)
    ]
