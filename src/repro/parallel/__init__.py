"""Process-pool execution layer for sharded Monte Carlo work.

The paper's headline claim is wall-clock speed; this package supplies
the other axis — running independent shards (``sweep_map`` gate rows,
``sweep_iv`` voltage chunks, ensemble replicas) across worker
processes.  Three guarantees:

* **bit-reproducibility**: every shard's seed is spawned from the root
  seed by shard index (:func:`spawn_seeds`), so results are identical
  for any ``jobs`` value and any scheduling order;
* **serial fidelity**: ``jobs=1`` executes inline — the pre-parallel
  code path, byte for byte;
* **merged observability**: per-worker ``SolverStats`` and telemetry
  metric snapshots are folded back into the parent session in shard
  order.

See :func:`repro.core.sweep.sweep_iv` / ``sweep_map`` (``jobs=`` and
``chunks=`` parameters) and :func:`ensemble_iv` for the user-facing
entry points; :func:`execute_shards` is the building block any future
distributed backend replaces.
"""

from __future__ import annotations

from repro.parallel.ensemble import EnsembleIV, ensemble_iv
from repro.parallel.pool import execute_shards, resolve_jobs
from repro.parallel.seeds import as_seed_sequence, spawn_seed_at, spawn_seeds

__all__ = [
    "EnsembleIV",
    "as_seed_sequence",
    "ensemble_iv",
    "execute_shards",
    "resolve_jobs",
    "spawn_seed_at",
    "spawn_seeds",
]
