"""Process-pool execution of independent simulation shards.

The sweep layer decomposes its work into *shards* — picklable payloads
plus a module-level worker function — and hands them here.  The
contract that makes parallelism safe for a Monte Carlo code:

* every shard carries its own spawned seed (see
  :mod:`repro.parallel.seeds`), so results are bit-identical for any
  ``jobs`` and any scheduling order;
* results are returned in shard order, regardless of completion order;
* ``jobs=1`` runs the shards inline in this process — no pool, no
  pickling, and telemetry flows straight into the active registry, so
  the serial path is byte-identical to pre-parallel behaviour;
* with ``jobs > 1`` and an active telemetry registry in the parent,
  each worker runs its shard under a metrics-only registry and ships
  the snapshot back; the parent folds the snapshots in shard order via
  :meth:`~repro.telemetry.registry.TelemetryRegistry.merge_snapshot`.
  Trace events are per-process and stay in the worker.

Worker functions and payloads must be picklable: module-level
functions, dataclasses, numpy arrays.  Closures (e.g. a lambda bias
setter) cannot cross the process boundary — use a module-level
callable class instead, as :func:`repro.core.sweep.symmetric_bias`
does.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Any, Callable, Sequence, TypeVar, cast

from repro.errors import SimulationError
from repro.telemetry import registry as _telemetry

_P = TypeVar("_P")
_R = TypeVar("_R")


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 1:
        raise SimulationError(f"jobs must be >= 1 (or 0 for all cores), got {jobs}")
    return jobs


def _shard_entry(
    worker: Callable[[_P], _R], payload: _P, collect_metrics: bool
) -> tuple[_R, dict[str, dict[str, Any]] | None]:
    """Subprocess entry: run one shard, optionally under a local
    metrics-only telemetry session whose snapshot rides back with the
    result."""
    if not collect_metrics:
        return worker(payload), None
    with _telemetry.session(trace=False) as reg:
        value = worker(payload)
    return value, reg.metrics()


def execute_shards(
    worker: Callable[[_P], _R],
    payloads: Sequence[_P],
    jobs: int | None = 1,
) -> list[_R]:
    """Run ``worker`` over every payload; results come back in order.

    ``jobs=1`` executes inline (the serial path); ``jobs>1`` fans the
    shards out over a :class:`concurrent.futures.ProcessPoolExecutor`
    with at most ``min(jobs, len(payloads))`` workers.  Exceptions
    raised by a shard propagate to the caller.
    """
    items = list(payloads)
    jobs = resolve_jobs(jobs)
    parent = _telemetry.ACTIVE
    with _telemetry.span(
        "parallel.execute", category="parallel", shards=len(items), jobs=jobs,
    ):
        if jobs == 1 or len(items) <= 1:
            return [worker(payload) for payload in items]

        collect = parent is not None
        results: list[_R | None] = [None] * len(items)
        snapshots: list[dict[str, dict[str, Any]] | None] = [None] * len(items)
        max_workers = min(jobs, len(items))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers
        ) as pool:
            futures = {
                pool.submit(_shard_entry, worker, payload, collect): index
                for index, payload in enumerate(items)
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                value, metrics = future.result()
                results[index] = value
                snapshots[index] = metrics
        if parent is not None:
            # fold in shard order so the merged registry is
            # deterministic whatever the completion order was
            for metrics in snapshots:
                if metrics is not None:
                    parent.merge_snapshot(metrics)
            parent.counter("parallel.shards").add(len(items))
            parent.gauge("parallel.jobs").set(max_workers)
    return cast("list[_R]", results)
