"""Process-pool execution of independent simulation shards.

The sweep layer decomposes its work into *shards* — picklable payloads
plus a module-level worker function — and hands them here.  The
contract that makes parallelism safe for a Monte Carlo code:

* every shard carries its own spawned seed (see
  :mod:`repro.parallel.seeds`), so results are bit-identical for any
  ``jobs`` and any scheduling order;
* results are returned in shard order, regardless of completion order;
* ``jobs=1`` runs the shards inline in this process — no pool, no
  pickling, and telemetry flows straight into the active registry, so
  the serial path is byte-identical to pre-parallel behaviour;
* with ``jobs > 1`` and an active telemetry registry in the parent,
  each worker runs its shard under a metrics-only registry and ships
  the snapshot back; the parent folds the snapshots in shard order via
  :meth:`~repro.telemetry.registry.TelemetryRegistry.merge_snapshot`.
  Trace events are per-process and stay in the worker.

Since the recovery layer (:mod:`repro.recovery`) the pool is also
*fault tolerant*.  An :class:`~repro.recovery.ExecutionPolicy` gives
each shard a bounded retry budget with capped deterministic backoff
and an optional wall-clock deadline; a dead worker
(:class:`~concurrent.futures.process.BrokenProcessPool`) or a
timed-out shard triggers a pool rebuild, and after
``max_pool_rebuilds`` rebuilds the remaining shards degrade to inline
execution.  Because a retried shard re-runs with the *same* payload —
and therefore the same spawned seed — recovery never changes results:
arrays and the fold-order combined event hash are identical to a
fault-free run.  One caveat is attribution: when a worker dies the
executor fails *every* in-flight future, so each one is charged an
attempt; exhaustion tests should pin the culprit with a single-shard
layout.  A :class:`~repro.recovery.CheckpointStore` persists each
completed shard's result; on resume the completed shards are replayed
from the manifest (``recovery.resume_hits``) and only the remainder is
executed.

Worker functions and payloads must be picklable: module-level
functions, dataclasses, numpy arrays.  Closures (e.g. a lambda bias
setter) cannot cross the process boundary — use a module-level
callable class instead, as :func:`repro.core.sweep.symmetric_bias`
does.
"""

from __future__ import annotations

import collections
import concurrent.futures
import os
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Protocol, Sequence, TypeVar

from repro.dsan import runtime as _dsan
from repro.errors import RecoveryError, SimulationError
from repro.monitor import monitor as _monitor
from repro.monitor.stream import MonitorHandle
from repro.recovery import faults as _faults
from repro.recovery.checkpoint import CheckpointSession, CheckpointStore
from repro.recovery.policy import ExecutionPolicy
from repro.telemetry import registry as _telemetry
from repro.telemetry.clock import wall_time

_P = TypeVar("_P")
_R = TypeVar("_R")

#: scheduler wait quantum (seconds) for the resilient pooled loop
_TICK = 0.05

_DEFAULT_POLICY = ExecutionPolicy()

_Snapshot = dict[str, dict[str, Any]]


class ResultSink(Protocol):
    """Anything that wants each completed shard's result as it lands:
    a :class:`~repro.recovery.CheckpointSession` (per-run manifest) or
    a campaign cache session (durable cross-run store)."""

    def record(self, shard: int, result: Any) -> None: ...


class ShardCacheSession(Protocol):
    """One batch's binding to a cross-run result cache."""

    def hits(self) -> dict[int, Any]:
        """Previously computed results, keyed by shard index."""
        ...

    def record(self, shard: int, result: Any) -> None:
        """Persist one freshly computed shard result."""
        ...


class ShardCache(Protocol):
    """A content-addressed cross-run result cache (duck-typed so this
    module never imports :mod:`repro.campaign`; see
    :class:`repro.campaign.CampaignStore` for the implementation)."""

    def begin(
        self, worker: Callable[..., Any], payloads: list[Any]
    ) -> ShardCacheSession: ...


class _RecordFanout:
    """Fans each completed shard's result out to every sink."""

    def __init__(self, sinks: Sequence[ResultSink]):
        self._sinks = tuple(sinks)

    def record(self, shard: int, result: Any) -> None:
        for sink in self._sinks:
            sink.record(shard, result)


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 1:
        raise SimulationError(f"jobs must be >= 1 (or 0 for all cores), got {jobs}")
    return jobs


def _shard_entry(
    worker: Callable[[_P], _R],
    payload: _P,
    collect_metrics: bool,
    dsan_check: bool = False,
    fault: _faults.FaultSpec | None = None,
    monitor: MonitorHandle | None = None,
) -> tuple[_R, _Snapshot | None, list[str] | None]:
    """Subprocess entry: run one shard, optionally under a local
    metrics-only telemetry session whose snapshot rides back with the
    result.

    With ``dsan_check`` the worker fingerprints its process-global
    state (global RNGs, telemetry registry) before and after the shard;
    the names of any slots the shard mutated ride back as the third
    element for the parent to report.  ``fault`` is the test-only
    misbehaviour staged for this attempt, performed before the real
    worker runs.  ``monitor`` is the picklable progress channel from
    :meth:`repro.monitor.RunMonitor.worker_channel`; while the shard
    runs, a daemon thread samples the worker-local registry and streams
    advisory datagrams to the parent — strictly read-only, so the
    result (and the dsan fingerprints bracketing the shard) are
    bit-identical with or without it.
    """
    if fault is not None:
        _faults.perform(fault)
    before = _dsan.state_fingerprint() if dsan_check else None
    if not collect_metrics and monitor is None:
        value, metrics = worker(payload), None
    else:
        # a metrics-only session gives the emitter something to sample
        # even when the parent has no registry of its own
        with _telemetry.session(trace=False) as reg:
            emitter = monitor.emitter() if monitor is not None else None
            if emitter is not None:
                emitter.start()
            try:
                value = worker(payload)
            finally:
                if emitter is not None:
                    emitter.stop()
        metrics = reg.metrics() if collect_metrics else None
    leaks: list[str] | None = None
    if before is not None:
        leaks = _dsan.diff_fingerprints(before, _dsan.state_fingerprint())
    return value, metrics, leaks


def _run_inline(
    worker: Callable[[_P], _R],
    items: list[_P],
    indices: Sequence[int],
    policy: ExecutionPolicy,
    plan: _faults.FaultPlan | None,
    session: ResultSink | None,
    dsan_check: bool,
    results: dict[int, _R],
    start_attempts: dict[int, int] | None = None,
    mon: _monitor.RunMonitor | None = None,
) -> int:
    """Run ``indices`` in this process with the retry policy applied.

    Fills ``results`` (and the checkpoint ``session``) per shard;
    returns how many retries were charged.  With ``retry_raised`` off a
    first-attempt exception propagates unchanged — the historical
    inline contract.  ``start_attempts`` carries the attempts already
    charged to each shard when the pooled scheduler degrades to inline
    execution, so the retry budget (and any staged faults keyed by
    attempt number) stay consistent across the transition.
    """
    retried = 0
    leaked: list[tuple[int, list[str]]] = []
    for index in indices:
        attempt = start_attempts.get(index, 0) if start_attempts else 0
        first = attempt == 0
        while True:
            attempt += 1
            if attempt > 1:
                time.sleep(policy.backoff_delay(attempt))
            spec = plan.spec_for(index, attempt) if plan is not None else None
            before = _dsan.state_fingerprint() if dsan_check else None
            if mon is not None:
                mon.shard_started(index, attempt)
            try:
                if spec is not None:
                    _faults.perform(spec, inline=True)
                value = worker(items[index])
            except Exception as exc:  # repro-lint: allow — any worker exception feeds the retry policy
                if policy.retry_raised and attempt < policy.max_attempts:
                    retried += 1
                    if mon is not None:
                        mon.shard_retried(index)
                    continue
                if policy.retry_raised or not first:
                    raise RecoveryError(
                        f"shard #{index} failed after {attempt} attempt(s): "
                        f"{type(exc).__name__}: {exc}",
                        shard=index,
                        attempts=attempt,
                    ) from exc
                raise
            if before is not None:
                changed = _dsan.diff_fingerprints(
                    before, _dsan.state_fingerprint()
                )
                if changed:
                    leaked.append((index, changed))
            results[index] = value
            if session is not None:
                session.record(index, value)
            if mon is not None:
                mon.shard_finished(index)
            break
    _dsan.raise_state_leaks(leaked)
    return retried


def _run_pooled(
    worker: Callable[[_P], _R],
    items: list[_P],
    indices: Sequence[int],
    jobs: int,
    policy: ExecutionPolicy,
    plan: _faults.FaultPlan | None,
    session: ResultSink | None,
    dsan_check: bool,
    collect: bool,
    results: dict[int, _R],
    mon: _monitor.RunMonitor | None = None,
) -> tuple[
    dict[int, _Snapshot | None],
    list[tuple[int, list[str]]],
    int,
    int,
    dict[int, int],
]:
    """The resilient pooled scheduler.

    Keeps at most ``min(jobs, len(indices))`` shards in flight (so a
    submission-time deadline approximates a start-time deadline),
    charges attempts, rebuilds the pool on breakage or timeout, and
    stops early — returning the still-unfinished indices with their
    charged attempts — when the rebuild budget is exhausted and inline
    degradation is allowed.
    """
    snapshots: dict[int, _Snapshot | None] = {}
    shard_leaks: list[tuple[int, list[str]]] = []
    attempts: dict[int, int] = dict.fromkeys(indices, 0)
    queue: collections.deque[int] = collections.deque(indices)
    retried = 0
    rebuilds = 0
    max_workers = min(jobs, len(indices))
    pool = concurrent.futures.ProcessPoolExecutor(max_workers=max_workers)
    inflight: dict[concurrent.futures.Future[Any], tuple[int, float | None]] = {}

    def submit_one(index: int) -> bool:
        attempts[index] += 1
        if attempts[index] > 1:
            time.sleep(policy.backoff_delay(attempts[index]))
        spec = plan.spec_for(index, attempts[index]) if plan is not None else None
        deadline = (
            wall_time() + policy.shard_timeout
            if policy.shard_timeout is not None
            else None
        )
        handle = mon.worker_channel(index) if mon is not None else None
        try:
            future = pool.submit(
                _shard_entry, worker, items[index], collect, dsan_check,
                spec, handle,
            )
        except BrokenProcessPool:
            # the pool died between completions; uncharge and rebuild
            attempts[index] -= 1
            queue.appendleft(index)
            return False
        inflight[future] = (index, deadline)
        if mon is not None:
            mon.shard_started(index, attempts[index])
        return True

    def exhaust(index: int, why: str, cause: BaseException | None) -> None:
        raise RecoveryError(
            f"shard #{index} failed after {attempts[index]} attempt(s): {why}",
            shard=index,
            attempts=attempts[index],
        ) from cause

    def requeue_untouched() -> None:
        # the pool is being torn down: shards still in flight were
        # (probably) innocent — requeue them without charging an attempt
        for future, (index, _deadline) in inflight.items():
            future.cancel()
            attempts[index] -= 1
            queue.append(index)
        inflight.clear()

    try:
        while queue or inflight:
            pool_ok = True
            while queue and len(inflight) < max_workers and pool_ok:
                pool_ok = submit_one(queue.popleft())
            done, _pending = concurrent.futures.wait(
                list(inflight),
                timeout=_TICK,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            broken = not pool_ok
            for future in done:
                index, _deadline = inflight.pop(future)
                try:
                    value, metrics, leaks = future.result()
                except BrokenProcessPool as exc:
                    # a worker died; the executor fails every in-flight
                    # future, so attribution is coarse — each one is
                    # charged an attempt and retried or exhausted
                    broken = True
                    if attempts[index] < policy.max_attempts:
                        retried += 1
                        if mon is not None:
                            mon.shard_retried(index)
                        queue.append(index)
                    else:
                        exhaust(index, "worker process died", exc)
                except concurrent.futures.CancelledError:
                    attempts[index] -= 1
                    queue.append(index)
                except Exception as exc:  # repro-lint: allow — any worker exception feeds the retry policy
                    if policy.retry_raised and attempts[index] < policy.max_attempts:
                        retried += 1
                        if mon is not None:
                            mon.shard_retried(index)
                        queue.append(index)
                    elif policy.retry_raised:
                        exhaust(
                            index, f"worker raised {type(exc).__name__}: {exc}", exc
                        )
                    else:
                        raise
                else:
                    results[index] = value
                    snapshots[index] = metrics
                    if leaks:
                        shard_leaks.append((index, leaks))
                    if session is not None:
                        session.record(index, value)
                    if mon is not None:
                        mon.shard_finished(index)
            if policy.shard_timeout is not None:
                now = wall_time()
                expired = [
                    future
                    for future, (_index, deadline) in inflight.items()
                    if deadline is not None and now >= deadline
                ]
                for future in expired:
                    index, _deadline = inflight.pop(future)
                    # a running future cannot be stopped; the rebuild
                    # below reclaims its worker
                    future.cancel()
                    broken = True
                    if attempts[index] < policy.max_attempts:
                        retried += 1
                        if mon is not None:
                            mon.shard_retried(index)
                        queue.append(index)
                    else:
                        exhaust(
                            index,
                            f"timed out after {policy.shard_timeout:g}s",
                            None,
                        )
            if broken:
                requeue_untouched()
                pool.shutdown(wait=False, cancel_futures=True)
                rebuilds += 1
                if rebuilds > policy.max_pool_rebuilds:
                    if policy.inline_fallback:
                        break  # degrade: remaining shards run inline
                    raise RecoveryError(
                        f"worker pool broke {rebuilds} time(s) "
                        f"(max_pool_rebuilds={policy.max_pool_rebuilds}) and "
                        "inline fallback is disabled"
                    )
                pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=max_workers
                )
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    leftover = {index: attempts[index] for index in sorted(set(queue))}
    return snapshots, shard_leaks, retried, rebuilds, leftover


def execute_shards(
    worker: Callable[[_P], _R],
    payloads: Sequence[_P],
    jobs: int | None = 1,
    *,
    policy: ExecutionPolicy | None = None,
    checkpoint: CheckpointStore | None = None,
    cache: ShardCache | None = None,
) -> list[_R]:
    """Run ``worker`` over every payload; results come back in order.

    ``jobs=1`` executes inline (the serial path); ``jobs>1`` fans the
    shards out over a :class:`concurrent.futures.ProcessPoolExecutor`
    with at most ``min(jobs, len(payloads))`` workers.  Exceptions
    raised by a shard propagate to the caller unchanged under the
    default policy; a custom :class:`~repro.recovery.ExecutionPolicy`
    adds bounded retry, per-shard timeouts and inline degradation,
    surfacing exhaustion as :class:`~repro.errors.RecoveryError`.

    With ``checkpoint`` each completed shard's result is persisted to
    the store's manifest as it finishes; a store opened with
    ``resume=True`` replays previously completed shards instead of
    re-running them.  Recovery activity is visible as telemetry
    counters: ``recovery.shards_retried``, ``recovery.pool_rebuilds``
    and ``recovery.resume_hits`` (emitted only when nonzero).

    With ``cache`` (a :class:`ShardCache`, e.g. a campaign store
    binding) every shard is first looked up in a durable *cross-run*
    store: hits are replayed without any simulation, and each freshly
    computed result is persisted as it lands — so an interrupted batch
    loses at most the shards in flight, and a re-run of an overlapping
    batch computes only the genuinely new cells.  Cache activity is
    emitted as the ``campaign.cell_hits`` / ``campaign.cells_computed``
    counters (always, when a cache is present, so "0 computed" is an
    observable fact).
    """
    items = list(payloads)
    jobs = resolve_jobs(jobs)
    pol = policy if policy is not None else _DEFAULT_POLICY
    plan = _faults.current_plan()
    parent = _telemetry.ACTIVE
    dsan_check = _dsan.active()
    if dsan_check:
        # verify the pool contract even on paths that never pickle:
        # the worker must be a plain module-level function and every
        # payload must survive a pickle round-trip (DET021)
        _dsan.verify_worker(worker)
        for index, payload in enumerate(items):
            _dsan.verify_payload(payload, index)
    session: CheckpointSession | None = None
    results: dict[int, _R] = {}
    if checkpoint is not None:
        session = checkpoint.begin(worker, items)
        results.update(session.completed())
    resumed = len(results)
    cached = 0
    sink: ResultSink | None = session
    if cache is not None:
        cache_session = cache.begin(worker, items)
        hits = cache_session.hits()
        for index in sorted(hits):
            if index not in results:
                results[index] = hits[index]
                cached += 1
        sink = (
            _RecordFanout((session, cache_session))
            if session is not None else cache_session
        )
    remaining = [index for index in range(len(items)) if index not in results]
    mon = _monitor.current()
    # only the outermost batch of a run is monitored (an inline
    # ensemble replica re-enters the pool for its inner sweep); nested
    # begin_batch calls return False but still need their end_batch
    live = mon if mon is not None and mon.begin_batch(
        len(items), resumed=resumed + cached
    ) else None
    batch_open = mon is not None
    try:
        with _telemetry.span(
            "parallel.execute", category="parallel", shards=len(items), jobs=jobs,
        ):
            retried = 0
            rebuilds = 0
            if jobs == 1 or len(remaining) <= 1:
                retried = _run_inline(
                    worker, items, remaining, pol, plan, sink, dsan_check,
                    results, mon=live,
                )
                if mon is not None and batch_open:
                    mon.end_batch()
                    batch_open = False
            else:
                collect = parent is not None
                snapshots, shard_leaks, retried, rebuilds, leftover = _run_pooled(
                    worker, items, remaining, jobs, pol, plan, sink,
                    dsan_check, collect, results, mon=live,
                )
                if leftover:
                    retried += _run_inline(
                        worker, items, sorted(leftover), pol, plan, sink,
                        dsan_check, results, start_attempts=leftover, mon=live,
                    )
                _dsan.raise_state_leaks(sorted(shard_leaks))
                if mon is not None and batch_open:
                    # close the batch before folding snapshots into the
                    # parent registry: the monitor already counted the
                    # streamed shard events, and the fold would double
                    # them in the terminal summary
                    mon.end_batch()
                    batch_open = False
                if parent is not None:
                    # fold in shard order so the merged registry is
                    # deterministic whatever the completion order was
                    for index in sorted(snapshots):
                        metrics = snapshots[index]
                        if metrics is not None:
                            parent.merge_snapshot(metrics, shard=index)
                    parent.counter("parallel.shards").add(len(items))
                    parent.gauge("parallel.jobs").set(min(jobs, len(remaining)))
            if parent is not None:
                if resumed:
                    parent.counter("recovery.resume_hits").add(resumed)
                if retried:
                    parent.counter("recovery.shards_retried").add(retried)
                if rebuilds:
                    parent.counter("recovery.pool_rebuilds").add(rebuilds)
                if cache is not None:
                    # always emitted while a cache is bound, so a fully
                    # cached batch observably reports "0 computed"
                    parent.counter("campaign.cell_hits").add(cached)
                    parent.counter("campaign.cells_computed").add(
                        len(remaining)
                    )
    finally:
        if mon is not None and batch_open:
            mon.end_batch()
    return [results[index] for index in range(len(items))]
