"""Process-pool execution of independent simulation shards.

The sweep layer decomposes its work into *shards* — picklable payloads
plus a module-level worker function — and hands them here.  The
contract that makes parallelism safe for a Monte Carlo code:

* every shard carries its own spawned seed (see
  :mod:`repro.parallel.seeds`), so results are bit-identical for any
  ``jobs`` and any scheduling order;
* results are returned in shard order, regardless of completion order;
* ``jobs=1`` runs the shards inline in this process — no pool, no
  pickling, and telemetry flows straight into the active registry, so
  the serial path is byte-identical to pre-parallel behaviour;
* with ``jobs > 1`` and an active telemetry registry in the parent,
  each worker runs its shard under a metrics-only registry and ships
  the snapshot back; the parent folds the snapshots in shard order via
  :meth:`~repro.telemetry.registry.TelemetryRegistry.merge_snapshot`.
  Trace events are per-process and stay in the worker.

Worker functions and payloads must be picklable: module-level
functions, dataclasses, numpy arrays.  Closures (e.g. a lambda bias
setter) cannot cross the process boundary — use a module-level
callable class instead, as :func:`repro.core.sweep.symmetric_bias`
does.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Any, Callable, Sequence, TypeVar, cast

from repro.dsan import runtime as _dsan
from repro.errors import SimulationError
from repro.telemetry import registry as _telemetry

_P = TypeVar("_P")
_R = TypeVar("_R")


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 1:
        raise SimulationError(f"jobs must be >= 1 (or 0 for all cores), got {jobs}")
    return jobs


def _shard_entry(
    worker: Callable[[_P], _R],
    payload: _P,
    collect_metrics: bool,
    dsan_check: bool = False,
) -> tuple[_R, dict[str, dict[str, Any]] | None, list[str] | None]:
    """Subprocess entry: run one shard, optionally under a local
    metrics-only telemetry session whose snapshot rides back with the
    result.

    With ``dsan_check`` the worker fingerprints its process-global
    state (global RNGs, telemetry registry) before and after the shard;
    the names of any slots the shard mutated ride back as the third
    element for the parent to report.
    """
    before = _dsan.state_fingerprint() if dsan_check else None
    if not collect_metrics:
        value, metrics = worker(payload), None
    else:
        with _telemetry.session(trace=False) as reg:
            value = worker(payload)
        metrics = reg.metrics()
    leaks: list[str] | None = None
    if before is not None:
        leaks = _dsan.diff_fingerprints(before, _dsan.state_fingerprint())
    return value, metrics, leaks


def execute_shards(
    worker: Callable[[_P], _R],
    payloads: Sequence[_P],
    jobs: int | None = 1,
) -> list[_R]:
    """Run ``worker`` over every payload; results come back in order.

    ``jobs=1`` executes inline (the serial path); ``jobs>1`` fans the
    shards out over a :class:`concurrent.futures.ProcessPoolExecutor`
    with at most ``min(jobs, len(payloads))`` workers.  Exceptions
    raised by a shard propagate to the caller.
    """
    items = list(payloads)
    jobs = resolve_jobs(jobs)
    parent = _telemetry.ACTIVE
    dsan_check = _dsan.active()
    if dsan_check:
        # verify the pool contract even on paths that never pickle:
        # the worker must be a plain module-level function and every
        # payload must survive a pickle round-trip (DET021)
        _dsan.verify_worker(worker)
        for index, payload in enumerate(items):
            _dsan.verify_payload(payload, index)
    with _telemetry.span(
        "parallel.execute", category="parallel", shards=len(items), jobs=jobs,
    ):
        if jobs == 1 or len(items) <= 1:
            if not dsan_check:
                return [worker(payload) for payload in items]
            # inline path under dsan: same per-shard state-leak
            # fingerprinting the workers would perform
            inline: list[_R] = []
            leaked: list[tuple[int, list[str]]] = []
            for index, payload in enumerate(items):
                before = _dsan.state_fingerprint()
                inline.append(worker(payload))
                changed = _dsan.diff_fingerprints(
                    before, _dsan.state_fingerprint()
                )
                if changed:
                    leaked.append((index, changed))
            _dsan.raise_state_leaks(leaked)
            return inline

        collect = parent is not None
        results: list[_R | None] = [None] * len(items)
        snapshots: list[dict[str, dict[str, Any]] | None] = [None] * len(items)
        shard_leaks: list[tuple[int, list[str]]] = []
        max_workers = min(jobs, len(items))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers
        ) as pool:
            futures = {
                pool.submit(
                    _shard_entry, worker, payload, collect, dsan_check
                ): index
                for index, payload in enumerate(items)
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                value, metrics, leaks = future.result()
                results[index] = value
                snapshots[index] = metrics
                if leaks:
                    shard_leaks.append((index, leaks))
        _dsan.raise_state_leaks(sorted(shard_leaks))
        if parent is not None:
            # fold in shard order so the merged registry is
            # deterministic whatever the completion order was
            for metrics in snapshots:
                if metrics is not None:
                    parent.merge_snapshot(metrics)
            parent.counter("parallel.shards").add(len(items))
            parent.gauge("parallel.jobs").set(max_workers)
    return cast("list[_R]", results)
