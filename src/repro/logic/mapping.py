"""Technology mapping: logic netlists to single-electron circuits.

Two stages, as in any synthesis flow:

1. :func:`decompose` rewrites arbitrary gates into the physical
   primitive set {INV, NAND2, NOR2};
2. :func:`map_to_circuit` instantiates one nSET/pSET cell per primitive
   gate, one wire node per net, the shared supply and one voltage
   source per primary input.

The result carries enough bookkeeping (net -> island index, device
counts) for stimulus driving and delay extraction.
"""

from __future__ import annotations

import dataclasses

from repro.circuit.builder import CircuitBuilder
from repro.circuit.circuit import Circuit
from repro.errors import NetlistError
from repro.logic.cells import VDD_NET, CellEmitter, LogicParameters
from repro.logic.netlist import Gate, GateKind, LogicNetlist, NetNamer

#: SET devices per primitive gate.
SETS_PER_GATE = {GateKind.INV: 2, GateKind.NAND2: 4, GateKind.NOR2: 4}

#: default physical target library (NAND-only; see the NOR2 note in
#: ``_expand``)
DEFAULT_TARGETS = frozenset({GateKind.INV, GateKind.NAND2})


def _expand(gate: Gate, namer: NetNamer) -> list[Gate]:
    """One decomposition step for a non-primitive gate."""
    k, ins, out, g = gate.kind, gate.inputs, gate.output, gate.name
    t = namer.fresh

    if k is GateKind.NOR2:
        # NOR(a,b) = INV(NAND(INV a, INV b)).  The direct series-pSET
        # NOR cell exists (CellEmitter.nor2) but its pull-up stack does
        # not restore degraded input levels reliably, so the default
        # flow is NAND-only — standard practice in restricted-library
        # synthesis.
        a_n, b_n, mid = t(g), t(g), t(g)
        return [
            Gate(f"{g}.ia", GateKind.INV, (ins[0],), a_n),
            Gate(f"{g}.ib", GateKind.INV, (ins[1],), b_n),
            Gate(f"{g}.nd", GateKind.NAND2, (a_n, b_n), mid),
            Gate(f"{g}.iv", GateKind.INV, (mid,), out),
        ]
    if k is GateKind.BUF:
        mid = t(g)
        return [
            Gate(f"{g}.i0", GateKind.INV, (ins[0],), mid),
            Gate(f"{g}.i1", GateKind.INV, (mid,), out),
        ]
    if k is GateKind.AND2:
        mid = t(g)
        return [
            Gate(f"{g}.nd", GateKind.NAND2, ins, mid),
            Gate(f"{g}.iv", GateKind.INV, (mid,), out),
        ]
    if k is GateKind.OR2:
        a_n, b_n = t(g), t(g)
        return [
            Gate(f"{g}.ia", GateKind.INV, (ins[0],), a_n),
            Gate(f"{g}.ib", GateKind.INV, (ins[1],), b_n),
            Gate(f"{g}.nd", GateKind.NAND2, (a_n, b_n), out),
        ]
    if k is GateKind.XOR2:
        a, b = ins
        t1, t2, t3 = t(g), t(g), t(g)
        return [
            Gate(f"{g}.x0", GateKind.NAND2, (a, b), t1),
            Gate(f"{g}.x1", GateKind.NAND2, (a, t1), t2),
            Gate(f"{g}.x2", GateKind.NAND2, (b, t1), t3),
            Gate(f"{g}.x3", GateKind.NAND2, (t2, t3), out),
        ]
    if k is GateKind.XNOR2:
        mid = t(g)
        return [
            Gate(f"{g}.xo", GateKind.XOR2, ins, mid),
            Gate(f"{g}.iv", GateKind.INV, (mid,), out),
        ]
    if k in (GateKind.AND3, GateKind.NAND3, GateKind.OR3, GateKind.NOR3):
        pair = {
            GateKind.AND3: (GateKind.AND2, GateKind.AND2),
            GateKind.NAND3: (GateKind.AND2, GateKind.NAND2),
            GateKind.OR3: (GateKind.OR2, GateKind.OR2),
            GateKind.NOR3: (GateKind.OR2, GateKind.NOR2),
        }[k]
        mid = t(g)
        return [
            Gate(f"{g}.a", pair[0], ins[:2], mid),
            Gate(f"{g}.b", pair[1], (mid, ins[2]), out),
        ]
    if k in (GateKind.AND4, GateKind.NAND4, GateKind.OR4):
        pair = {
            GateKind.AND4: (GateKind.AND2, GateKind.AND2, GateKind.AND2),
            GateKind.NAND4: (GateKind.AND2, GateKind.AND2, GateKind.NAND2),
            GateKind.OR4: (GateKind.OR2, GateKind.OR2, GateKind.OR2),
        }[k]
        m1, m2 = t(g), t(g)
        return [
            Gate(f"{g}.a", pair[0], ins[:2], m1),
            Gate(f"{g}.b", pair[1], ins[2:], m2),
            Gate(f"{g}.c", pair[2], (m1, m2), out),
        ]
    raise NetlistError(f"no decomposition rule for gate kind {k}")


def decompose(
    netlist: LogicNetlist, targets: frozenset = DEFAULT_TARGETS
) -> LogicNetlist:
    """Rewrite ``netlist`` into the physical target library.

    The default library is {INV, NAND2}; pass a ``targets`` set
    including :data:`GateKind.NOR2` to keep direct NOR cells.  Logic
    function is preserved (the tests check random vectors through
    :meth:`LogicNetlist.evaluate` on both versions).
    """
    namer = NetNamer(prefix=f"{netlist.name}.d")
    pending = list(netlist.gates)
    primitive: list[Gate] = []
    while pending:
        gate = pending.pop()
        if gate.kind in targets:
            primitive.append(gate)
        else:
            pending.extend(_expand(gate, namer))
    return LogicNetlist(netlist.name, netlist.inputs, netlist.outputs, primitive)


def count_sets(netlist: LogicNetlist, targets: frozenset = DEFAULT_TARGETS) -> int:
    """SET devices needed by the (decomposed) netlist."""
    decomposed = (
        netlist
        if all(g.kind in targets for g in netlist.gates)
        else decompose(netlist, targets)
    )
    return sum(SETS_PER_GATE[g.kind] for g in decomposed.gates)


def pad_to_set_count(netlist: LogicNetlist, target_sets: int) -> LogicNetlist:
    """Append inverter chains until the mapped circuit has exactly
    ``target_sets`` devices.

    The paper's benchmarks have fixed published junction counts; our
    structural generators reproduce the function first and are then
    padded (with inverter chains hanging off the primary inputs, which
    adds realistic load without changing any output) to match the
    published size exactly.
    """
    base = decompose(netlist)
    # padding below adds only INV gates, which are in every target set
    deficit = target_sets - count_sets(base)
    if deficit < 0:
        raise NetlistError(
            f"{netlist.name}: base netlist already uses {count_sets(base)} SETs "
            f"> target {target_sets}"
        )
    if deficit % 2:
        raise NetlistError(
            f"{netlist.name}: cannot pad an odd SET deficit ({deficit})"
        )
    gates = list(base.gates)
    n_inverters = deficit // 2
    sources = list(base.inputs)
    chain_length = 7  # inverters per pad chain before restarting at an input
    for i in range(n_inverters):
        if i % chain_length == 0:
            source = sources[(i // chain_length) % len(sources)]
        else:
            source = f"{netlist.name}.pad{i - 1}"
        gates.append(
            Gate(
                f"{netlist.name}.padinv{i}",
                GateKind.INV,
                (source,),
                f"{netlist.name}.pad{i}",
            )
        )
    return LogicNetlist(netlist.name, base.inputs, base.outputs, gates)


@dataclasses.dataclass
class MappedCircuit:
    """A logic netlist realised as a single-electron circuit."""

    circuit: Circuit
    netlist: LogicNetlist
    params: LogicParameters
    n_sets: int
    n_junctions: int
    #: source name per primary input net
    input_sources: dict[str, str]
    #: per-device structural records for the SPICE baseline
    devices: list = dataclasses.field(default_factory=list)

    def island_of(self, net: str) -> int:
        """Island index of a logic net's wire node."""
        return self.circuit.island_index(net)

    def input_voltages(self, values: dict[str, bool]) -> dict[str, float]:
        """Source-voltage dict realising a boolean input assignment."""
        unknown = set(values) - set(self.netlist.inputs)
        if unknown:
            raise NetlistError(f"unknown inputs: {sorted(unknown)}")
        return {
            self.input_sources[net]: (self.params.vdd if value else 0.0)
            for net, value in values.items()
        }

    def initial_occupation(self, values: dict[str, bool]):
        """DC-initialised island occupation for a boolean input vector.

        Settling a large benchmark from the all-neutral state is slow
        (every wire node must charge through blockaded devices), so we
        seed each wire node with the electron count matching its
        boolean steady level — the MC run then only has to relax the
        residual.  SET islands and stack nodes start neutral.
        """
        import numpy as np

        from repro.constants import E_CHARGE

        net_values = self.netlist.evaluate(values)
        occupation = np.zeros(self.circuit.n_islands, dtype=np.int64)
        p = self.params
        for gate in self.netlist.gates:
            net = gate.output
            level = p.high_fraction if net_values[net] else p.low_fraction
            target_v = level * p.vdd
            island = self.circuit.island_index(net)
            # q = -e*n sets v ~ q / C_load  =>  n = -C*v/e
            occupation[island] = -int(round(p.load_capacitance * target_v / E_CHARGE))
        return occupation


def map_to_circuit(
    netlist: LogicNetlist,
    params: LogicParameters | None = None,
    targets: frozenset = DEFAULT_TARGETS,
) -> MappedCircuit:
    """Instantiate the netlist as an nSET/pSET circuit.

    Every net becomes a wire node with the family's load capacitance;
    primary inputs are driven rail-to-rail by ideal sources (the
    paper's input stimulus).
    """
    if params is None:
        params = LogicParameters()
    primitive = decompose(netlist, targets)
    builder = CircuitBuilder()
    emitter = CellEmitter(builder, params)

    builder.add_voltage_source("vdd", VDD_NET, params.vdd)
    input_sources: dict[str, str] = {}
    for net in primitive.inputs:
        source_name = f"vin_{net}"
        builder.add_voltage_source(source_name, net, 0.0)
        input_sources[net] = source_name

    for gate in primitive.gates:
        emitter.wire(gate.output)
        if gate.kind is GateKind.INV:
            emitter.inverter(gate.name, gate.inputs[0], gate.output)
        elif gate.kind is GateKind.NAND2:
            emitter.nand2(gate.name, gate.inputs[0], gate.inputs[1], gate.output)
        elif gate.kind is GateKind.NOR2:
            emitter.nor2(gate.name, gate.inputs[0], gate.inputs[1], gate.output)
        else:  # pragma: no cover - decompose() guarantees primitives
            raise NetlistError(f"unmapped gate kind {gate.kind}")

    return MappedCircuit(
        circuit=builder.build(),
        netlist=primitive,
        params=params,
        n_sets=emitter.n_sets,
        n_junctions=emitter.n_junctions,
        input_sources=input_sources,
        devices=emitter.devices,
    )
