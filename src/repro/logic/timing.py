"""Static timing analysis for mapped SET logic.

A Monte Carlo delay measurement is expensive; designers first want a
*static* estimate — which outputs are deep, which input is the critical
path, roughly how slow a benchmark will switch.  This module walks the
mapped netlist with per-cell delay weights (calibrated once against
Monte Carlo measurements of the standard cells) and reports logic
depth and estimated arrival times.

The estimates are deliberately simple (topological longest path, no
slope/ fanout modelling beyond a linear load term): their job is
ranking and budgeting, with the MC engine as the sign-off tool — the
same division of labour the paper draws between its SPICE model and
SEMSIM.
"""

from __future__ import annotations

import dataclasses

from repro.errors import NetlistError
from repro.logic.mapping import MappedCircuit
from repro.logic.netlist import GateKind, LogicNetlist
from repro.telemetry import registry as _telemetry

#: nominal per-cell delays (seconds) for the default LogicParameters,
#: calibrated with Monte Carlo rise/fall measurements of isolated cells
DEFAULT_CELL_DELAYS = {
    GateKind.INV: 1.0e-9,
    GateKind.NAND2: 2.5e-9,
    GateKind.NOR2: 2.5e-9,
}

#: extra delay per fanout gate input driven (load term)
DEFAULT_FANOUT_PENALTY = 0.3e-9


@dataclasses.dataclass
class TimingReport:
    """Result of a static timing pass."""

    #: arrival time estimate per net (seconds)
    arrival: dict
    #: logic depth (gate count) per net
    depth: dict
    #: primary outputs sorted by decreasing arrival time
    critical_outputs: list

    @property
    def critical_path_delay(self) -> float:
        """Estimated delay of the slowest primary output."""
        return self.arrival[self.critical_outputs[0]]

    def critical_path(self, netlist: LogicNetlist) -> list[str]:
        """Nets along the slowest path, from input to output."""
        path = [self.critical_outputs[0]]
        while True:
            driver = netlist.driver_of(path[-1])
            if driver is None:
                break
            slowest = max(driver.inputs, key=lambda n: self.arrival[n])
            path.append(slowest)
        return list(reversed(path))


def analyze_timing(
    netlist: LogicNetlist,
    cell_delays: dict | None = None,
    fanout_penalty: float = DEFAULT_FANOUT_PENALTY,
) -> TimingReport:
    """Topological longest-path timing over a (primitive) netlist."""
    if cell_delays is None:
        cell_delays = DEFAULT_CELL_DELAYS
    with _telemetry.span(
        "timing.analyze", category="logic", gates=len(netlist.gates),
    ):
        arrival: dict = {net: 0.0 for net in netlist.inputs}
        depth: dict = {net: 0 for net in netlist.inputs}
        for gate in netlist.topological_gates():
            if gate.kind not in cell_delays:
                raise NetlistError(
                    f"no cell delay for {gate.kind}; run on a mapped "
                    "(primitive) netlist"
                )
            load = len(netlist.fanout_of(gate.output))
            gate_delay = cell_delays[gate.kind] + fanout_penalty * load
            arrival[gate.output] = gate_delay + max(
                (arrival[n] for n in gate.inputs), default=0.0
            )
            depth[gate.output] = 1 + max(
                (depth[n] for n in gate.inputs), default=0
            )
        ordered = sorted(
            netlist.outputs, key=lambda n: arrival.get(n, 0.0), reverse=True
        )
    return TimingReport(arrival=arrival, depth=depth, critical_outputs=ordered)


def analyze_mapped(mapped: MappedCircuit, **kwargs) -> TimingReport:
    """Static timing of a mapped benchmark (its primitive netlist)."""
    return analyze_timing(mapped.netlist, **kwargs)
