"""nSET/pSET standard-cell library (voltage-state SET logic).

The paper implements its benchmarks with "nSETs and pSETs … ordinary
SETs with a second gate added that has a constant gate voltage, which
shifts the current-voltage characteristic curve in a desired direction"
(Sec. IV-B, Fig. 4b).  This module provides the three physical cells —
inverter, NAND2, NOR2 — built from such devices.

Bias implementation
-------------------
Shifting a SET's transfer curve by a constant gate charge ``q_b`` can
be done with a bias gate ``C_b`` at voltage ``V_b = q_b / C_b`` or,
identically, with a fixed background charge ``q0 = q_b`` on the island
(the electrostatics only sees the induced charge).  The cells keep the
physical ``C_b`` capacitor in the circuit (so the island's total
capacitance matches a two-gate device) and apply the shift as a
background charge, which keeps the source count down on 7000-junction
benchmarks.

Operating point
---------------
The default :class:`LogicParameters` were selected with the
master-equation solver plus Monte Carlo switching-speed scans (see
``tests/test_logic_cells.py``): an inverter regenerates logic levels to
a stable pair of roughly ``0.2 Vdd`` / ``0.9 Vdd``, and the NAND truth
table holds with millivolt margins at 1.5 K.
"""

from __future__ import annotations

import dataclasses

from repro.circuit.builder import CircuitBuilder
from repro.circuit.components import GROUND
from repro.errors import CircuitError


@dataclasses.dataclass(frozen=True)
class DeviceRecord:
    """One nSET/pSET instance, recorded for the SPICE baseline.

    The analytical SPICE flow models each SET as a lumped three-plus-
    terminal device; this record carries the structural information it
    needs without re-deriving devices from the circuit graph.
    """

    island: str
    source: str
    drain: str
    gate: str
    bias_e: float
    kind: str  # "nset" | "pset"


@dataclasses.dataclass(frozen=True)
class LogicParameters:
    """Electrical parameters of the SET logic family.

    Attributes
    ----------
    junction_capacitance, junction_resistance:
        Tunnel junction ``C``/``R`` (the paper's 1 aF / 1 MOhm scale).
    gate_capacitance:
        Input gate capacitor per SET.
    bias_capacitance:
        The constant-voltage second gate of the nSET/pSET devices.
    load_capacitance:
        Wire capacitance of every logic net.  Being much larger than
        the junction capacitance, it electrically isolates circuit
        stages — exactly the property the adaptive algorithm exploits
        (Fig. 4's ``C1``).
    stack_capacitance:
        Ground capacitor on the internal node of series device stacks
        (NAND/NOR); moderates that node's charging energy so the stack
        conducts.
    vdd:
        Supply voltage.
    nset_bias, pset_bias:
        Constant bias charges (units of ``e``) applied to nSET/pSET
        islands.
    temperature:
        Intended operating temperature (K).
    """

    junction_capacitance: float = 1e-18
    junction_resistance: float = 1e6
    gate_capacitance: float = 5e-18
    bias_capacitance: float = 2e-18
    load_capacitance: float = 50e-18
    stack_capacitance: float = 40e-18
    vdd: float = 16e-3
    nset_bias: float = 0.30
    pset_bias: float = 0.05
    #: bias charge (units of e) on NAND/NOR stack nodes; half an
    #: electron puts the stack node at charge degeneracy so the series
    #: path conducts without a thermally activated first hop
    stack_bias: float = 0.5
    temperature: float = 1.5

    #: fraction of ``vdd`` regarded as the logic threshold when a
    #: calibrated midpoint is unavailable
    threshold_fraction: float = 0.55
    #: steady logic levels as fractions of ``vdd`` (measured with the
    #: master-equation solver at the default operating point); used for
    #: DC initialisation of wire-node charges
    high_fraction: float = 0.91
    low_fraction: float = 0.20

    def __post_init__(self) -> None:
        for field in (
            "junction_capacitance", "junction_resistance", "gate_capacitance",
            "bias_capacitance", "load_capacitance", "stack_capacitance", "vdd",
        ):
            if getattr(self, field) <= 0.0:
                raise CircuitError(f"LogicParameters.{field} must be > 0")

    @property
    def logic_threshold(self) -> float:
        """Voltage separating logic 0 from logic 1."""
        return self.threshold_fraction * self.vdd


#: node label of the shared supply rail in mapped circuits
VDD_NET = "__vdd__"


class CellEmitter:
    """Emits nSET/pSET cells into a :class:`CircuitBuilder`.

    Node-label conventions: logic nets keep their netlist names; SET
    islands are ``{gate}.p0`` / ``{gate}.n1`` etc.; stack nodes are
    ``{gate}.mid``.
    """

    def __init__(self, builder: CircuitBuilder, params: LogicParameters):
        self.builder = builder
        self.params = params
        self.n_sets = 0
        self.n_junctions = 0
        self.devices: list[DeviceRecord] = []

    # ------------------------------------------------------------------
    # devices
    # ------------------------------------------------------------------
    def _set_device(
        self, island: str, source: str, drain: str, gate_net: str, bias: float,
        kind: str = "nset",
    ) -> None:
        """One SET: two junctions, an input gate, and a bias gate."""
        p = self.params
        self.devices.append(
            DeviceRecord(island, source, drain, gate_net, bias, kind)
        )
        self.builder.add_junction(
            f"{island}.j1", source, island, p.junction_resistance,
            p.junction_capacitance,
        )
        self.builder.add_junction(
            f"{island}.j2", island, drain, p.junction_resistance,
            p.junction_capacitance,
        )
        self.builder.add_capacitor(f"{island}.cg", gate_net, island, p.gate_capacitance)
        self.builder.add_capacitor(f"{island}.cb", GROUND, island, p.bias_capacitance)
        if bias:
            self.builder.add_background_charge(island, bias)
        self.n_sets += 1
        self.n_junctions += 2

    def nset(self, island: str, source: str, drain: str, gate_net: str) -> None:
        """nSET: conducts when its input is logic high."""
        self._set_device(
            island, source, drain, gate_net, self.params.nset_bias, "nset"
        )

    def pset(self, island: str, source: str, drain: str, gate_net: str) -> None:
        """pSET: conducts when its input is logic low."""
        self._set_device(
            island, source, drain, gate_net, self.params.pset_bias, "pset"
        )

    # ------------------------------------------------------------------
    # cells
    # ------------------------------------------------------------------
    def inverter(self, name: str, input_net: str, output_net: str) -> None:
        """Complementary inverter: pSET pull-up, nSET pull-down."""
        self.pset(f"{name}.p0", VDD_NET, output_net, input_net)
        self.nset(f"{name}.n0", output_net, GROUND, input_net)

    def _stack_node(self, mid: str) -> None:
        self.builder.add_capacitor(
            f"{mid}.c", mid, GROUND, self.params.stack_capacitance
        )
        if self.params.stack_bias:
            self.builder.add_background_charge(mid, self.params.stack_bias)

    def nand2(self, name: str, in_a: str, in_b: str, output_net: str) -> None:
        """NAND2: parallel pSET pull-up, series nSET pull-down."""
        self.pset(f"{name}.p0", VDD_NET, output_net, in_a)
        self.pset(f"{name}.p1", VDD_NET, output_net, in_b)
        mid = f"{name}.mid"
        self.nset(f"{name}.n0", output_net, mid, in_a)
        self.nset(f"{name}.n1", mid, GROUND, in_b)
        self._stack_node(mid)

    def nor2(self, name: str, in_a: str, in_b: str, output_net: str) -> None:
        """NOR2: series pSET pull-up, parallel nSET pull-down."""
        mid = f"{name}.mid"
        self.pset(f"{name}.p0", VDD_NET, mid, in_a)
        self.pset(f"{name}.p1", mid, output_net, in_b)
        self._stack_node(mid)
        self.nset(f"{name}.n0", output_net, GROUND, in_a)
        self.nset(f"{name}.n1", output_net, GROUND, in_b)

    def wire(self, net: str) -> None:
        """The load capacitor that makes ``net`` a logic wire node."""
        self.builder.add_capacitor(
            f"{net}.cl", net, GROUND, self.params.load_capacitance
        )
