"""Gate-level logic netlists.

The paper's large-scale evaluation converts logic benchmarks into
single-electron circuits "using CMOS interpretations of the logic
circuits" (Sec. IV-B).  This module is the gate-level representation
those conversions start from: a named directed acyclic network of
standard combinational gates with boolean evaluation (used both to
generate stimulus/expected-response pairs and to sanity-check the
benchmark generators).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, Mapping

import networkx as nx

from repro.errors import NetlistError


class GateKind(enum.Enum):
    """Supported combinational gate types.

    ``INV``, ``NAND2`` and ``NOR2`` are *primitive* (they map directly
    to nSET/pSET cells); everything else is decomposed by
    :func:`repro.logic.mapping.decompose`.
    """

    INV = "inv"
    BUF = "buf"
    NAND2 = "nand2"
    NOR2 = "nor2"
    AND2 = "and2"
    OR2 = "or2"
    XOR2 = "xor2"
    XNOR2 = "xnor2"
    NAND3 = "nand3"
    NOR3 = "nor3"
    AND3 = "and3"
    OR3 = "or3"
    NAND4 = "nand4"
    AND4 = "and4"
    OR4 = "or4"


ARITY = {
    GateKind.INV: 1,
    GateKind.BUF: 1,
    GateKind.NAND2: 2,
    GateKind.NOR2: 2,
    GateKind.AND2: 2,
    GateKind.OR2: 2,
    GateKind.XOR2: 2,
    GateKind.XNOR2: 2,
    GateKind.NAND3: 3,
    GateKind.NOR3: 3,
    GateKind.AND3: 3,
    GateKind.OR3: 3,
    GateKind.NAND4: 4,
    GateKind.AND4: 4,
    GateKind.OR4: 4,
}

#: Gate kinds with a direct nSET/pSET implementation.
PRIMITIVE_KINDS = frozenset({GateKind.INV, GateKind.NAND2, GateKind.NOR2})


def _gate_function(kind: GateKind, values: list[bool]) -> bool:
    if kind is GateKind.INV:
        return not values[0]
    if kind is GateKind.BUF:
        return values[0]
    if kind in (GateKind.NAND2, GateKind.NAND3, GateKind.NAND4):
        return not all(values)
    if kind in (GateKind.NOR2, GateKind.NOR3):
        return not any(values)
    if kind in (GateKind.AND2, GateKind.AND3, GateKind.AND4):
        return all(values)
    if kind in (GateKind.OR2, GateKind.OR3, GateKind.OR4):
        return any(values)
    if kind is GateKind.XOR2:
        return values[0] != values[1]
    if kind is GateKind.XNOR2:
        return values[0] == values[1]
    raise NetlistError(f"no evaluation rule for gate kind {kind}")


@dataclasses.dataclass(frozen=True)
class Gate:
    """One gate instance: ``output = kind(inputs)``."""

    name: str
    kind: GateKind
    inputs: tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        expected = ARITY[self.kind]
        if len(self.inputs) != expected:
            raise NetlistError(
                f"gate {self.name!r} ({self.kind.value}) needs {expected} "
                f"inputs, got {len(self.inputs)}"
            )
        if self.output in self.inputs:
            raise NetlistError(f"gate {self.name!r} drives one of its own inputs")


class LogicNetlist:
    """A combinational logic network.

    Parameters
    ----------
    name:
        Benchmark/netlist name.
    inputs:
        Primary input net names, in order.
    outputs:
        Primary output net names (each must be driven by a gate).
    gates:
        Gate instances; every internal net must have exactly one driver.
    """

    def __init__(
        self,
        name: str,
        inputs: Iterable[str],
        outputs: Iterable[str],
        gates: Iterable[Gate],
    ):
        self.name = name
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self.gates = tuple(gates)
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if len(set(self.inputs)) != len(self.inputs):
            raise NetlistError(f"{self.name}: duplicate primary inputs")
        drivers: dict[str, Gate] = {}
        for gate in self.gates:
            if gate.output in drivers:
                raise NetlistError(
                    f"{self.name}: net {gate.output!r} driven by both "
                    f"{drivers[gate.output].name!r} and {gate.name!r}"
                )
            if gate.output in self.inputs:
                raise NetlistError(
                    f"{self.name}: gate {gate.name!r} drives primary input "
                    f"{gate.output!r}"
                )
            drivers[gate.output] = gate
        self._drivers = drivers

        known = set(self.inputs) | set(drivers)
        for gate in self.gates:
            for net in gate.inputs:
                if net not in known:
                    raise NetlistError(
                        f"{self.name}: gate {gate.name!r} reads undriven net {net!r}"
                    )
        for net in self.outputs:
            if net not in known:
                raise NetlistError(f"{self.name}: output net {net!r} is undriven")

        graph = nx.DiGraph()
        for gate in self.gates:
            for net in gate.inputs:
                graph.add_edge(net, gate.output)
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise NetlistError(f"{self.name}: combinational loop through {cycle}")
        self._graph = graph

    # ------------------------------------------------------------------
    @property
    def nets(self) -> tuple[str, ...]:
        """All nets: primary inputs then gate outputs (topological)."""
        return self.inputs + tuple(g.output for g in self.topological_gates())

    def driver_of(self, net: str) -> Gate | None:
        """The gate driving ``net`` (``None`` for primary inputs)."""
        return self._drivers.get(net)

    def fanout_of(self, net: str) -> list[Gate]:
        """Gates reading ``net``."""
        return [g for g in self.gates if net in g.inputs]

    def topological_gates(self) -> list[Gate]:
        """Gates in evaluation order."""
        order = {net: i for i, net in enumerate(nx.topological_sort(self._graph))}
        return sorted(self.gates, key=lambda g: order[g.output])

    def evaluate(self, input_values: Mapping[str, bool]) -> dict[str, bool]:
        """Boolean simulation; returns the value of every net."""
        missing = set(self.inputs) - set(input_values)
        if missing:
            raise NetlistError(f"{self.name}: missing input values for {sorted(missing)}")
        values: dict[str, bool] = {n: bool(input_values[n]) for n in self.inputs}
        for gate in self.topological_gates():
            values[gate.output] = _gate_function(
                gate.kind, [values[n] for n in gate.inputs]
            )
        return values

    def output_values(self, input_values: Mapping[str, bool]) -> dict[str, bool]:
        """Boolean values of the primary outputs only."""
        values = self.evaluate(input_values)
        return {net: values[net] for net in self.outputs}

    def gate_count(self) -> dict[GateKind, int]:
        counts: dict[GateKind, int] = {}
        for gate in self.gates:
            counts[gate.kind] = counts.get(gate.kind, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (
            f"LogicNetlist({self.name!r}, {len(self.inputs)} in, "
            f"{len(self.outputs)} out, {len(self.gates)} gates)"
        )


class NetNamer:
    """Generates unique net/gate names with a common prefix."""

    def __init__(self, prefix: str = "n"):
        self._prefix = prefix
        self._counter = 0

    def fresh(self, hint: str = "") -> str:
        self._counter += 1
        if hint:
            return f"{self._prefix}_{hint}_{self._counter}"
        return f"{self._prefix}_{self._counter}"
