"""Propagation-delay extraction from Monte Carlo traces (Fig. 7).

A benchmark is settled at one input vector, the inputs step to a new
vector, and the delay is the simulated time until a toggling output's
wire-node potential crosses the logic threshold and stays there.
Because logic levels on a wire node are quantised in units of
``e / C_load`` (a few millivolts), the crossing requires several
consecutive samples on the far side of the threshold before it counts.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import SimulationConfig
from repro.core.engine import MonteCarloEngine
from repro.core.recording import NodeVoltageRecorder
from repro.errors import SimulationError
from repro.logic.mapping import MappedCircuit
from repro.logic.stimuli import StepStimulus

#: consecutive samples past the crossing level required to call a crossing
_STABLE_SAMPLES = 5
#: the crossing level sits this fraction of the way from the logic
#: threshold towards the expected final level (hysteresis against the
#: single-electron quantisation noise of wire nodes)
_HYSTERESIS_FRACTION = 0.5
#: settle extensions allowed when the output has not yet reached a
#: clean pre-switch level
_MAX_SETTLE_EXTENSIONS = 5


@dataclasses.dataclass
class DelayResult:
    """One measured propagation delay."""

    output_net: str
    delay: float
    switch_time: float
    crossing_time: float
    threshold: float
    rises: bool
    events_used: int


def _find_crossing(
    times: np.ndarray,
    voltages: np.ndarray,
    threshold: float,
    rises: bool,
    start_time: float,
) -> float | None:
    """First time after ``start_time`` with a stable threshold crossing."""
    past = (voltages > threshold) if rises else (voltages < threshold)
    valid = times >= start_time
    run = 0
    for i in range(len(times)):
        if not valid[i]:
            continue
        if past[i]:
            run += 1
            if run >= _STABLE_SAMPLES:
                return float(times[i - _STABLE_SAMPLES + 1])
        else:
            run = 0
    return None


def measure_propagation_delay(
    mapped: MappedCircuit,
    stimulus: StepStimulus,
    config: SimulationConfig | None = None,
    settle_jumps: int = 4000,
    max_jumps: int = 400_000,
    chunk_jumps: int = 10_000,
    sample_interval: int = 5,
    output_net: str | None = None,
) -> DelayResult:
    """Measure the input-step to output-crossing delay.

    Parameters
    ----------
    mapped:
        A benchmark circuit from :func:`repro.logic.build_benchmark`
        or :func:`repro.logic.map_to_circuit`.
    stimulus:
        The input step (must toggle at least one output).
    settle_jumps:
        Events simulated at the *before* vector to reach a steady
        logic state.
    max_jumps:
        Event budget after the step; exceeded budget raises
        :class:`SimulationError` (the output never switched — a logic
        failure worth surfacing, not hiding).
    output_net:
        Which toggling output to watch (default: the first).
    """
    if config is None:
        config = SimulationConfig(temperature=mapped.params.temperature)
    if not stimulus.toggled_outputs:
        raise SimulationError("stimulus toggles no outputs; no delay defined")
    if output_net is None:
        output_net, final_high = stimulus.toggled_outputs[0]
    else:
        matches = dict(stimulus.toggled_outputs)
        if output_net not in matches:
            raise SimulationError(
                f"output {output_net!r} does not toggle for this stimulus"
            )
        final_high = matches[output_net]

    engine = MonteCarloEngine(
        mapped.circuit, config,
        initial_occupation=mapped.initial_occupation(stimulus.before),
    )
    engine.set_sources(mapped.input_voltages(stimulus.before))
    engine.run(max_jumps=settle_jumps)

    island = mapped.island_of(output_net)
    p = mapped.params
    threshold = p.logic_threshold
    final_level = (p.high_fraction if final_high else p.low_fraction) * p.vdd
    crossing_level = threshold + _HYSTERESIS_FRACTION * (final_level - threshold)

    # the output must start cleanly on the far side of the plain logic
    # threshold; extend the settle if quantisation noise has it high
    for _ in range(_MAX_SETTLE_EXTENSIONS):
        v0 = float(engine.solver.potentials()[island])
        if (v0 > threshold) != final_high:
            break
        engine.run(max_jumps=settle_jumps)
    else:
        raise SimulationError(
            f"output {output_net!r} never settled on the pre-switch side "
            "of the threshold; stimulus is electrically invalid here"
        )

    recorder = engine.add_recorder(NodeVoltageRecorder(island, sample_interval))
    switch_time = engine.solver.time
    engine.set_sources(mapped.input_voltages(stimulus.after))

    used = 0
    crossing: float | None = None
    while used < max_jumps and crossing is None:
        engine.run(max_jumps=chunk_jumps)
        used += chunk_jumps
        crossing = _find_crossing(
            recorder.times(), recorder.voltages(), crossing_level, final_high,
            switch_time,
        )
    if crossing is None:
        raise SimulationError(
            f"output {output_net!r} did not cross the logic threshold within "
            f"{max_jumps} events after the input step"
        )
    return DelayResult(
        output_net=output_net,
        delay=crossing - switch_time,
        switch_time=switch_time,
        crossing_time=crossing,
        threshold=crossing_level,
        rises=final_high,
        events_used=used,
    )


def measure_cyclic_delay(
    mapped: MappedCircuit,
    stimulus: StepStimulus,
    config: SimulationConfig | None = None,
    cycles: int = 5,
    settle_jumps: int = 6000,
    max_jumps: int = 400_000,
    chunk_jumps: int = 10_000,
    sample_interval: int = 5,
) -> list[float]:
    """Delays of ``cycles`` repeated input steps in one simulation.

    The input toggles between the stimulus vectors like a square wave;
    each *before -> after* transition contributes one delay sample.
    Averaging over cycles (and then over seeds, as Fig. 7 does with
    its nine runs) is what beats the intrinsic shot-to-shot spread of
    single-electron switching down to the few-percent level.
    """
    if config is None:
        config = SimulationConfig(temperature=mapped.params.temperature)
    if not stimulus.toggled_outputs:
        raise SimulationError("stimulus toggles no outputs; no delay defined")
    output_net, final_high = stimulus.toggled_outputs[0]
    island = mapped.island_of(output_net)
    p = mapped.params
    threshold = p.logic_threshold
    final_level = (p.high_fraction if final_high else p.low_fraction) * p.vdd
    crossing_level = threshold + _HYSTERESIS_FRACTION * (final_level - threshold)

    def fresh_engine(offset: int):
        eng = MonteCarloEngine(
            mapped.circuit, config.replace(seed=config.seed + 7919 * offset),
            initial_occupation=mapped.initial_occupation(stimulus.before),
        )
        eng.set_sources(mapped.input_voltages(stimulus.before))
        eng.run(max_jumps=settle_jumps)
        rec = eng.add_recorder(NodeVoltageRecorder(island, sample_interval))
        return eng, rec

    engine, recorder = fresh_engine(0)
    delays: list[float] = []
    resets = 0
    max_resets = 2 * cycles
    while len(delays) < cycles:
        # wait (within a bounded budget) for the output to sit on its
        # pre-switch side; the return transition can be the slow
        # direction of the cell family, and occasionally a metastable
        # charge trap holds the node — recover by reinitialising
        settled = False
        used_settle = 0
        while used_settle <= max_jumps // 2:
            v0 = float(engine.solver.potentials()[island])
            if (v0 > threshold) != final_high:
                settled = True
                break
            engine.run(max_jumps=settle_jumps)
            used_settle += settle_jumps
        if not settled:
            resets += 1
            if resets > max_resets:
                raise SimulationError(
                    f"output {output_net!r} repeatedly failed to return to "
                    "its pre-switch level; the arc traps charge"
                )
            engine, recorder = fresh_engine(resets)
            continue
        switch_time = engine.solver.time
        engine.set_sources(mapped.input_voltages(stimulus.after))
        used = 0
        crossing = None
        while used < max_jumps and crossing is None:
            engine.run(max_jumps=chunk_jumps)
            used += chunk_jumps
            crossing = _find_crossing(
                recorder.times(), recorder.voltages(), crossing_level,
                final_high, switch_time,
            )
        if crossing is None:
            resets += 1
            if resets > max_resets:
                raise SimulationError(
                    f"output {output_net!r} repeatedly missed cyclic "
                    f"transitions within {max_jumps} events"
                )
            engine, recorder = fresh_engine(resets)
            continue
        delays.append(crossing - switch_time)
        engine.set_sources(mapped.input_voltages(stimulus.before))
        engine.run(max_jumps=settle_jumps)
    return delays


def find_validated_stimulus(
    mapped: MappedCircuit,
    config: SimulationConfig | None = None,
    rng_seed: int = 0,
    max_candidates: int = 12,
    settle_jumps: int = 12_000,
    prefer_rising: bool = True,
    probe_stability: bool = False,
    stability_threshold: float = 0.6,
) -> StepStimulus:
    """Search for an input step whose watched output is *electrically*
    valid: after settling at either vector, the toggling output's wire
    voltage agrees with its boolean value.

    SET voltage-state logic has finite noise margins, and a handful of
    deep nodes in the large benchmarks sit close to the threshold (the
    physical chips the paper's logic style targets behave the same
    way).  Defining propagation delay on a validated transition keeps
    the Fig. 7 comparison meaningful; candidates whose output level is
    marginal are skipped.  Rising transitions are preferred because
    the family's pull-up is faster and tighter than the stacked
    pull-down, giving lower-variance delays.

    With ``probe_stability`` the search additionally measures a quick
    three-shot delay per candidate and keeps looking until the relative
    spread falls below ``stability_threshold`` (best candidate wins
    otherwise) — single-electron switching is heavy-tailed, and a
    timing comparison on a bimodal arc measures the tail lottery, not
    the solver.
    """
    from repro.logic.stimuli import find_step_stimulus
    from repro.parallel.seeds import spawn_seeds

    if config is None:
        config = SimulationConfig(temperature=mapped.params.temperature)
    threshold = mapped.params.logic_threshold
    candidates = []
    # candidate k searches with the k-th spawned child of rng_seed:
    # statistically independent streams, unlike the old `seed + 1000*k`
    # arithmetic (nearby integer seeds are not independence-tested, and
    # colliding offsets would silently duplicate candidates)
    candidate_seeds = spawn_seeds(rng_seed, max_candidates)
    for k in range(max_candidates):
        stim = find_step_stimulus(mapped.netlist, candidate_seeds[k])
        ordered = sorted(stim.toggled_outputs, key=lambda t: not t[1]) \
            if prefer_rising else list(stim.toggled_outputs)
        candidates.append((stim, ordered))

    def settles_correctly(stim: StepStimulus, net: str, final_high: bool) -> bool:
        """Valid if the output switches cleanly AND returns when the
        input steps back — cyclic measurements need a trap-free arc."""
        engine = MonteCarloEngine(
            mapped.circuit, config,
            initial_occupation=mapped.initial_occupation(stim.before),
        )
        island = mapped.island_of(net)
        margin = 0.08 * mapped.params.vdd

        def level_ok(high: bool) -> bool:
            v = float(engine.solver.potentials()[island])
            return v > threshold + margin if high else v < threshold - margin

        engine.set_sources(mapped.input_voltages(stim.before))
        engine.run(max_jumps=settle_jumps)
        if not level_ok(not final_high):
            return False
        engine.set_sources(mapped.input_voltages(stim.after))
        engine.run(max_jumps=2 * settle_jumps)
        if not level_ok(final_high):
            return False
        engine.set_sources(mapped.input_voltages(stim.before))
        engine.run(max_jumps=2 * settle_jumps)
        return level_ok(not final_high)

    def stability(stim: StepStimulus) -> float:
        """Relative spread of a quick 3-shot delay probe (lower = better)."""
        samples = []
        for probe_seed in (101, 102, 103):
            result = measure_propagation_delay(
                mapped, stim, config.replace(seed=probe_seed),
                settle_jumps=settle_jumps // 2, max_jumps=150_000,
            )
            samples.append(result.delay)
        mean = float(np.mean(samples))
        if mean <= 0.0:
            return float("inf")
        return float(np.std(samples)) / mean

    best: tuple[float, StepStimulus] | None = None
    for stim, ordered in candidates:
        for net, final_high in ordered:
            if not settles_correctly(stim, net, final_high):
                continue
            validated = StepStimulus(
                stim.before, stim.after, ((net, final_high),)
            )
            if not probe_stability:
                return validated
            try:
                spread = stability(validated)
            except SimulationError:
                continue
            if spread < stability_threshold:
                return validated
            if best is None or spread < best[0]:
                best = (spread, validated)
    if best is not None:
        return best[1]
    raise SimulationError(
        f"{mapped.netlist.name}: no electrically validated stimulus found "
        f"in {max_candidates} candidates"
    )


def average_delay(
    mapped: MappedCircuit,
    stimulus: StepStimulus,
    seeds: list[int],
    config: SimulationConfig | None = None,
    **kwargs,
) -> float:
    """Mean delay over several RNG seeds.

    Fig. 7 averages nine SEMSIM runs with different seeds; the same
    protocol defines the non-adaptive reference delay.
    """
    if not seeds:
        raise SimulationError("average_delay needs at least one seed")
    if config is None:
        config = SimulationConfig(temperature=mapped.params.temperature)
    delays = []
    for seed in seeds:
        result = measure_propagation_delay(
            mapped, stimulus, config.replace(seed=seed), **kwargs
        )
        delays.append(result.delay)
    return float(np.mean(delays))
