"""Reusable gate-level building blocks for the benchmark generators.

Each block appends gates to a caller-supplied list and returns the
names of its output nets.  All blocks are pure structure — boolean
correctness is checked against reference Python implementations in the
tests.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.logic.netlist import Gate, GateKind, NetNamer


def inverters(
    gates: list[Gate], namer: NetNamer, nets: list[str], tag: str
) -> list[str]:
    """One inverter per net; returns the complemented net names."""
    outs = []
    for i, net in enumerate(nets):
        out = namer.fresh(f"{tag}_n{i}")
        gates.append(Gate(f"{tag}.inv{i}", GateKind.INV, (net,), out))
        outs.append(out)
    return outs


def gate_tree(
    gates: list[Gate],
    namer: NetNamer,
    nets: list[str],
    kind: GateKind,
    tag: str,
) -> str:
    """Balanced binary tree of 2-input gates (for XOR/AND/OR trees)."""
    if not nets:
        raise NetlistError("gate_tree needs at least one net")
    level = list(nets)
    round_ = 0
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            out = namer.fresh(f"{tag}_t{round_}_{i}")
            gates.append(
                Gate(
                    f"{tag}.t{round_}_{i}", kind,
                    (level[i], level[i + 1]), out,
                )
            )
            nxt.append(out)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        round_ += 1
    return level[0]


def xor_tree(gates: list[Gate], namer: NetNamer, nets: list[str], tag: str) -> str:
    """Parity of ``nets``."""
    return gate_tree(gates, namer, nets, GateKind.XOR2, tag)


def and_tree(gates: list[Gate], namer: NetNamer, nets: list[str], tag: str) -> str:
    return gate_tree(gates, namer, nets, GateKind.AND2, tag)


def or_tree(gates: list[Gate], namer: NetNamer, nets: list[str], tag: str) -> str:
    return gate_tree(gates, namer, nets, GateKind.OR2, tag)


def mux2(
    gates: list[Gate],
    namer: NetNamer,
    d0: str,
    d1: str,
    select: str,
    select_n: str,
    tag: str,
) -> str:
    """2:1 multiplexer from three NAND2 gates (select inverter shared
    by the caller)."""
    t0 = namer.fresh(f"{tag}_m0")
    t1 = namer.fresh(f"{tag}_m1")
    out = namer.fresh(f"{tag}_mo")
    gates.append(Gate(f"{tag}.m0", GateKind.NAND2, (d0, select_n), t0))
    gates.append(Gate(f"{tag}.m1", GateKind.NAND2, (d1, select), t1))
    gates.append(Gate(f"{tag}.mo", GateKind.NAND2, (t0, t1), out))
    return out


def mux4(
    gates: list[Gate],
    namer: NetNamer,
    data: list[str],
    selects: list[str],
    selects_n: list[str],
    tag: str,
) -> str:
    """4:1 multiplexer as a tree of 2:1 muxes."""
    if len(data) != 4 or len(selects) != 2:
        raise NetlistError("mux4 needs 4 data nets and 2 selects")
    lo = mux2(gates, namer, data[0], data[1], selects[0], selects_n[0], f"{tag}a")
    hi = mux2(gates, namer, data[2], data[3], selects[0], selects_n[0], f"{tag}b")
    return mux2(gates, namer, lo, hi, selects[1], selects_n[1], f"{tag}c")


def full_adder(
    gates: list[Gate],
    namer: NetNamer,
    a: str,
    b: str,
    cin: str,
    tag: str,
) -> tuple[str, str]:
    """Full adder; returns ``(sum, carry_out)`` nets.

    Uses the classic 2-XOR / 3-NAND structure.
    """
    p = namer.fresh(f"{tag}_p")
    s = namer.fresh(f"{tag}_s")
    g1 = namer.fresh(f"{tag}_g1")
    g2 = namer.fresh(f"{tag}_g2")
    cout = namer.fresh(f"{tag}_co")
    gates.append(Gate(f"{tag}.x0", GateKind.XOR2, (a, b), p))
    gates.append(Gate(f"{tag}.x1", GateKind.XOR2, (p, cin), s))
    gates.append(Gate(f"{tag}.n0", GateKind.NAND2, (a, b), g1))
    gates.append(Gate(f"{tag}.n1", GateKind.NAND2, (p, cin), g2))
    gates.append(Gate(f"{tag}.n2", GateKind.NAND2, (g1, g2), cout))
    return s, cout


def half_decoder(
    gates: list[Gate],
    namer: NetNamer,
    a: str,
    b: str,
    tag: str,
) -> list[str]:
    """2-to-4 line decoder (active high); returns the 4 minterm nets."""
    an, bn = inverters(gates, namer, [a, b], f"{tag}c")
    outs = []
    for i, (x, y) in enumerate([(an, bn), (a, bn), (an, b), (a, b)]):
        out = namer.fresh(f"{tag}_d{i}")
        gates.append(Gate(f"{tag}.d{i}", GateKind.AND2, (x, y), out))
        outs.append(out)
    return outs


def ripple_adder(
    gates: list[Gate],
    namer: NetNamer,
    a_bits: list[str],
    b_bits: list[str],
    cin: str,
    tag: str,
) -> tuple[list[str], str]:
    """Ripple-carry adder over bit vectors; returns (sums, carry_out)."""
    if len(a_bits) != len(b_bits):
        raise NetlistError("ripple_adder operand widths differ")
    sums = []
    carry = cin
    for i, (a, b) in enumerate(zip(a_bits, b_bits)):
        s, carry = full_adder(gates, namer, a, b, carry, f"{tag}_fa{i}")
        sums.append(s)
    return sums, carry
