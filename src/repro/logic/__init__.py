"""SET logic front end: gates, mapping, benchmarks, delay extraction."""

from __future__ import annotations

from repro.logic.benchmarks import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark_by_name,
    build_benchmark,
)
from repro.logic.cells import LogicParameters
from repro.logic.delay import (
    DelayResult,
    average_delay,
    find_validated_stimulus,
    measure_cyclic_delay,
    measure_propagation_delay,
)
from repro.logic.mapping import (
    MappedCircuit,
    count_sets,
    decompose,
    map_to_circuit,
    pad_to_set_count,
)
from repro.logic.netlist import Gate, GateKind, LogicNetlist, NetNamer
from repro.logic.stimuli import (
    StepStimulus,
    exhaustive_vectors,
    find_step_stimulus,
    random_vector,
)
from repro.logic.timing import TimingReport, analyze_mapped, analyze_timing

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "DelayResult",
    "Gate",
    "GateKind",
    "LogicNetlist",
    "LogicParameters",
    "MappedCircuit",
    "NetNamer",
    "StepStimulus",
    "TimingReport",
    "analyze_mapped",
    "analyze_timing",
    "average_delay",
    "benchmark_by_name",
    "build_benchmark",
    "count_sets",
    "decompose",
    "exhaustive_vectors",
    "find_step_stimulus",
    "find_validated_stimulus",
    "map_to_circuit",
    "measure_cyclic_delay",
    "measure_propagation_delay",
    "pad_to_set_count",
    "random_vector",
]
