"""The paper's 15 logic benchmarks (Sec. IV-B, Figs. 6 and 7).

The original ISCAS'85/'89 and 74xx netlist files are not distributed
with the paper; these generators build *functionally faithful*
circuits of the same kind (decoders, encoders, multiplexers, parity
networks, ALU, error-correction logic, counter/scan control logic) and
pad them with inverter chains to the exact junction counts the paper
reports — see DESIGN.md, "Substitutions".  Sequential benchmarks
(s27, s208) are time-unrolled into combinational frames, mirroring how
a combinational SET simulator exercises them.

Every generator returns a :class:`~repro.logic.netlist.LogicNetlist`;
:func:`build_benchmark` pads and maps it into a single-electron
circuit whose junction count matches the paper exactly.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.errors import NetlistError
from repro.logic.blocks import (
    and_tree,
    full_adder,
    half_decoder,
    inverters,
    mux2,
    mux4,
    or_tree,
    ripple_adder,
    xor_tree,
)
from repro.logic.cells import LogicParameters
from repro.logic.mapping import MappedCircuit, map_to_circuit, pad_to_set_count
from repro.logic.netlist import Gate, GateKind, LogicNetlist, NetNamer


# ----------------------------------------------------------------------
# small blocks benchmarks
# ----------------------------------------------------------------------
def decoder_2to10() -> LogicNetlist:
    """2-bit line decoder with buffered outputs (76 junctions)."""
    gates: list[Gate] = []
    namer = NetNamer("d210")
    outs = half_decoder(gates, namer, "a", "b", "dec")
    return LogicNetlist("2-to-10 decoder", ["a", "b"], outs, gates)


def full_adder_bench() -> LogicNetlist:
    """Single-bit full adder (100 junctions)."""
    gates: list[Gate] = []
    namer = NetNamer("fa")
    s, cout = full_adder(gates, namer, "a", "b", "cin", "fa")
    return LogicNetlist("Full-Adder", ["a", "b", "cin"], [s, cout], gates)


def decoder_74ls138() -> LogicNetlist:
    """3-to-8 decoder, active-low outputs (168 junctions)."""
    gates: list[Gate] = []
    namer = NetNamer("x138")
    lines = half_decoder(gates, namer, "a", "b", "ab")
    (cn,) = inverters(gates, namer, ["c"], "c")
    outs = []
    for i in range(8):
        sel_c = "c" if i >= 4 else cn
        out = namer.fresh(f"y{i}")
        gates.append(Gate(f"x138.o{i}", GateKind.NAND2, (lines[i % 4], sel_c), out))
        outs.append(out)
    return LogicNetlist("74LS138", ["a", "b", "c"], outs, gates)


def mux_74ls153() -> LogicNetlist:
    """Dual 4-line-to-1-line multiplexer (224 junctions)."""
    gates: list[Gate] = []
    namer = NetNamer("x153")
    selects = ["s0", "s1"]
    selects_n = inverters(gates, namer, selects, "s")
    inputs = list(selects)
    outs = []
    for unit in range(2):
        data = [f"d{unit}{i}" for i in range(4)]
        inputs += data
        outs.append(mux4(gates, namer, data, selects, selects_n, f"u{unit}"))
    return LogicNetlist("74LS153", inputs, outs, gates)


def s27a() -> LogicNetlist:
    """ISCAS'89 s27-class control logic, unrolled two frames
    (264 junctions)."""
    gates: list[Gate] = []
    namer = NetNamer("s27")

    def frame(tag: str, g0, g1, g2, g3, s5, s6, s7):
        inv0 = namer.fresh(f"{tag}i0")
        gates.append(Gate(f"{tag}.i0", GateKind.INV, (g0,), inv0))
        a1 = namer.fresh(f"{tag}a1")
        gates.append(Gate(f"{tag}.a1", GateKind.AND2, (inv0, s6), a1))
        o1 = namer.fresh(f"{tag}o1")
        gates.append(Gate(f"{tag}.o1", GateKind.OR2, (a1, s5), o1))
        nr1 = namer.fresh(f"{tag}r1")
        gates.append(Gate(f"{tag}.r1", GateKind.NAND2, (o1, g1), nr1))
        o2 = namer.fresh(f"{tag}o2")
        gates.append(Gate(f"{tag}.o2", GateKind.OR2, (g2, s7), o2))
        nr2 = namer.fresh(f"{tag}r2")
        gates.append(Gate(f"{tag}.r2", GateKind.NAND2, (g3, o2), nr2))
        n6 = namer.fresh(f"{tag}n6")
        gates.append(Gate(f"{tag}.n6", GateKind.AND2, (o1, o2), n6))
        n7 = namer.fresh(f"{tag}n7")
        gates.append(Gate(f"{tag}.n7", GateKind.NOR2, (a1, g2), n7))
        out = namer.fresh(f"{tag}out")
        gates.append(Gate(f"{tag}.out", GateKind.OR2, (nr2, n6), out))
        return out, nr1, n6, n7

    inputs = ["g0", "g1", "g2", "g3", "g0b", "g1b", "g2b", "g3b",
              "st5", "st6", "st7"]
    out1, s5, s6, s7 = frame("f0", "g0", "g1", "g2", "g3", "st5", "st6", "st7")
    out2, *_ = frame("f1", "g0b", "g1b", "g2b", "g3b", s5, s6, s7)
    return LogicNetlist("s27a", inputs, [out1, out2], gates)


def encoder_74148() -> LogicNetlist:
    """8-to-3 priority encoder with group-select output (336 junctions).

    Active-high formulation of the classic priority equations.
    """
    gates: list[Gate] = []
    namer = NetNamer("x148")
    d = [f"d{i}" for i in range(8)]
    dn = inverters(gates, namer, d, "dn")

    y2 = or_tree(gates, namer, d[4:8], "y2")

    # y1 = d7 | d6 | (~d5 & ~d4 & (d3 | d2))
    lo_hi_n = namer.fresh("n54")
    gates.append(Gate("x148.n54", GateKind.NOR2, (d[5], d[4]), lo_hi_n))
    d32 = namer.fresh("o32")
    gates.append(Gate("x148.o32", GateKind.OR2, (d[3], d[2]), d32))
    y1m = namer.fresh("y1m")
    gates.append(Gate("x148.y1m", GateKind.AND2, (lo_hi_n, d32), y1m))
    y1 = or_tree(gates, namer, [d[7], d[6], y1m], "y1")

    # y0 = d7 | (~d6 & (d5 | (~d4 & (d3 | (~d2 & d1)))))
    t21 = namer.fresh("t21")
    gates.append(Gate("x148.t21", GateKind.AND2, (dn[2], d[1]), t21))
    t3 = namer.fresh("t3")
    gates.append(Gate("x148.t3", GateKind.OR2, (d[3], t21), t3))
    t4 = namer.fresh("t4")
    gates.append(Gate("x148.t4", GateKind.AND2, (dn[4], t3), t4))
    t5 = namer.fresh("t5")
    gates.append(Gate("x148.t5", GateKind.OR2, (d[5], t4), t5))
    t6 = namer.fresh("t6")
    gates.append(Gate("x148.t6", GateKind.AND2, (dn[6], t5), t6))
    y0 = or_tree(gates, namer, [d[7], t6], "y0")

    # group select: any input active.  d1..d7 active each force some y
    # bit high, so OR-ing the outputs with d0 gives the exact function
    # at a fraction of the gate cost of an 8-wide OR tree.
    gs = or_tree(gates, namer, [y2, y1, y0, d[0]], "gs")
    return LogicNetlist("74148", d, [y2, y1, y0, gs], gates)


def decoder_74154() -> LogicNetlist:
    """4-to-16 decoder, active-low outputs (360 junctions)."""
    gates: list[Gate] = []
    namer = NetNamer("x154")
    lo = half_decoder(gates, namer, "a", "b", "lo")
    hi = half_decoder(gates, namer, "c", "d", "hi")
    outs = []
    for i in range(16):
        out = namer.fresh(f"y{i}")
        gates.append(
            Gate(f"x154.o{i}", GateKind.NAND2, (lo[i % 4], hi[i // 4]), out)
        )
        outs.append(out)
    return LogicNetlist("74154", ["a", "b", "c", "d"], outs, gates)


def bcd_74ls47() -> LogicNetlist:
    """BCD to seven-segment decoder (448 junctions).

    Segments are generated as NOR of the digits where the segment is
    dark, over a 10-minterm BCD decode — the compact two-level
    structure used in TTL data books.
    """
    gates: list[Gate] = []
    namer = NetNamer("x47")
    lo = half_decoder(gates, namer, "a", "b", "lo")   # a = LSB
    hi = half_decoder(gates, namer, "c", "d", "hi")
    m = []
    for digit in range(10):
        net = namer.fresh(f"m{digit}")
        gates.append(
            Gate(f"x47.m{digit}", GateKind.AND2,
                 (lo[digit % 4], hi[digit // 4]), net)
        )
        m.append(net)

    # complements of the digit minterms, shared by all segments
    m_n = inverters(gates, namer, m, "mn")

    def dark(tag: str, digits: list[int]) -> str:
        """Segment output: lit unless the current digit is in ``digits``.

        ``NOT(any dark digit) = AND of the dark digits' complements`` —
        an AND tree over the shared inverters, the cheapest form in a
        NAND-only library.
        """
        if len(digits) == 1:
            return m_n[digits[0]]
        return and_tree(gates, namer, [m_n[i] for i in digits], f"sd{tag}")

    segs = [
        dark("a", [1, 4]),
        dark("b", [5, 6]),
        dark("c", [2]),
        dark("d", [1, 4, 7]),
        dark("e", [1, 3, 4, 5, 7, 9]),
        dark("f", [1, 2, 3, 7]),
        dark("g", [0, 1, 7]),
    ]
    return LogicNetlist("74LS47", ["a", "b", "c", "d"], segs, gates)


def parity_74ls280() -> LogicNetlist:
    """9-bit odd/even parity generator/checker (484 junctions)."""
    gates: list[Gate] = []
    namer = NetNamer("x280")
    bits = [f"i{k}" for k in range(9)]
    even = xor_tree(gates, namer, bits, "par")
    odd = namer.fresh("odd")
    gates.append(Gate("x280.odd", GateKind.INV, (even,), odd))
    return LogicNetlist("74LS280", bits, [even, odd], gates)


def alu_54ls181() -> LogicNetlist:
    """4-bit ALU slice (944 junctions).

    Function structure of the 74181 family: operand preprocessing under
    a mode select, a ripple adder, per-bit logic operations and output
    multiplexing between arithmetic and logic results.
    """
    gates: list[Gate] = []
    namer = NetNamer("x181")
    a = [f"a{i}" for i in range(4)]
    b = [f"b{i}" for i in range(4)]
    s0n, mn = inverters(gates, namer, ["s0", "m"], "sel")
    bn = inverters(gates, namer, b, "bn")

    # operand select: b or ~b (subtract support)
    b_sel = [
        mux2(gates, namer, b[i], bn[i], "s0", s0n, f"bs{i}") for i in range(4)
    ]
    sums, cout = ripple_adder(gates, namer, a, b_sel, "cin", "add")

    outs = []
    for i in range(4):
        and_i = namer.fresh(f"and{i}")
        gates.append(Gate(f"x181.and{i}", GateKind.AND2, (a[i], b[i]), and_i))
        or_i = namer.fresh(f"or{i}")
        gates.append(Gate(f"x181.or{i}", GateKind.OR2, (a[i], b[i]), or_i))
        logic_i = mux2(gates, namer, and_i, or_i, "s0", s0n, f"lg{i}")
        outs.append(mux2(gates, namer, sums[i], logic_i, "m", mn, f"f{i}"))

    return LogicNetlist(
        "54LS181", a + b + ["cin", "s0", "m"], outs + [cout], gates
    )


def s208_1() -> LogicNetlist:
    """ISCAS'89 s208-class 8-bit counter logic, unrolled three frames
    (1344 junctions)."""
    gates: list[Gate] = []
    namer = NetNamer("s208")
    state = [f"q{i}" for i in range(8)]
    inputs = state + ["en"]
    outs: list[str] = []
    current = state
    for frame in range(3):
        carry = "en"
        nxt = []
        for i in range(8):
            t = namer.fresh(f"f{frame}t{i}")
            gates.append(
                Gate(f"s208.f{frame}x{i}", GateKind.XOR2, (current[i], carry), t)
            )
            c = namer.fresh(f"f{frame}c{i}")
            gates.append(
                Gate(f"s208.f{frame}a{i}", GateKind.AND2, (current[i], carry), c)
            )
            carry = c
            nxt.append(t)
        current = nxt
        outs.append(carry)
    return LogicNetlist("s208-1", inputs, current + outs, gates)


def c432() -> LogicNetlist:
    """ISCAS'85 c432-class 36-input interrupt controller
    (2072 junctions).

    Four request groups of nine lines: per-group request OR trees,
    strict group priority, per-line masking and a merged 9-bit grant
    bus plus a 2-bit group code.
    """
    gates: list[Gate] = []
    namer = NetNamer("c432")
    groups = [[f"g{g}l{i}" for i in range(9)] for g in range(4)]
    inputs = [net for group in groups for net in group]

    requests = [or_tree(gates, namer, groups[g], f"rq{g}") for g in range(4)]
    req_n = inverters(gates, namer, requests, "rqn")

    # strict priority: group 0 beats 1 beats 2 beats 3
    grant = [requests[0]]
    blocked = req_n[0]
    for g in range(1, 4):
        p = namer.fresh(f"pr{g}")
        gates.append(Gate(f"c432.pr{g}", GateKind.AND2, (blocked, requests[g]), p))
        grant.append(p)
        if g < 3:
            nb = namer.fresh(f"bl{g}")
            gates.append(
                Gate(f"c432.bl{g}", GateKind.AND2, (blocked, req_n[g]), nb)
            )
            blocked = nb

    bus = []
    for i in range(9):
        masked = []
        for g in range(4):
            net = namer.fresh(f"mk{g}_{i}")
            gates.append(
                Gate(f"c432.mk{g}_{i}", GateKind.AND2, (groups[g][i], grant[g]), net)
            )
            masked.append(net)
        bus.append(or_tree(gates, namer, masked, f"bus{i}"))

    code1 = or_tree(gates, namer, [grant[2], grant[3]], "cd1")
    code0 = or_tree(gates, namer, [grant[1], grant[3]], "cd0")
    any_req = or_tree(gates, namer, requests, "any")

    # second tier: global mask, binary encode of the grant bus, parity
    masked_bus = []
    for i in range(9):
        net = namer.fresh(f"gm{i}")
        gates.append(Gate(f"c432.gm{i}", GateKind.AND2, (bus[i], "mask"), net))
        masked_bus.append(net)
    bus_parity = xor_tree(gates, namer, masked_bus, "bp")
    enc = []
    for bit in range(4):
        members = [masked_bus[i] for i in range(9) if i & (1 << bit)]
        if members:
            enc.append(or_tree(gates, namer, members, f"enc{bit}"))
    return LogicNetlist(
        "c432", inputs + ["mask"],
        bus + enc + [bus_parity, code1, code0, any_req], gates,
    )


def _hamming_positions(n_data: int, n_check: int) -> list[list[int]]:
    """Data-bit index lists per check bit (simple binary-position code)."""
    groups: list[list[int]] = [[] for _ in range(n_check)]
    position = 1
    data_index = 0
    while data_index < n_data:
        if position & (position - 1):  # not a power of two -> data position
            for c in range(n_check):
                if position & (1 << c):
                    groups[c].append(data_index)
            data_index += 1
        position += 1
    return groups


def _sec_netlist(name: str, n_data: int, n_check: int,
                 with_ded: bool = False) -> LogicNetlist:
    """Single-error-correcting (optionally double-detecting) logic.

    The c499/c1355/c1908 family are 32/16-bit SEC(/DED) circuits: XOR
    syndrome trees, a syndrome decoder and correction XORs.
    """
    gates: list[Gate] = []
    namer = NetNamer(name)
    data = [f"d{i}" for i in range(n_data)]
    checks = [f"p{i}" for i in range(n_check)]
    groups = _hamming_positions(n_data, n_check)

    syndrome = []
    for c in range(n_check):
        nets = [data[i] for i in groups[c]] + [checks[c]]
        syndrome.append(xor_tree(gates, namer, nets, f"sy{c}"))
    syndrome_n = inverters(gates, namer, syndrome, "syn")

    # decode the syndrome into per-data-bit "flip" lines
    flips = []
    for i in range(n_data):
        literals = []
        for c in range(n_check):
            literals.append(syndrome[c] if i in groups[c] else syndrome_n[c])
        flips.append(and_tree(gates, namer, literals, f"fl{i}"))

    corrected = []
    for i in range(n_data):
        out = namer.fresh(f"co{i}")
        gates.append(Gate(f"{name}.c{i}", GateKind.XOR2, (data[i], flips[i]), out))
        corrected.append(out)

    outputs = corrected
    if with_ded:
        overall = xor_tree(gates, namer, data + checks + ["pall"], "ov")
        err_any = or_tree(gates, namer, syndrome, "eany")
        (ov_n,) = inverters(gates, namer, [overall], "ovn")
        double = namer.fresh("ded")
        gates.append(Gate(f"{name}.ded", GateKind.AND2, (err_any, ov_n), double))
        outputs = corrected + [double]
        return LogicNetlist(name, data + checks + ["pall"], outputs, gates)
    return LogicNetlist(name, data + checks, outputs, gates)


def c1355() -> LogicNetlist:
    """ISCAS'85 c1355-class 24-bit single-error corrector
    (4616 junctions)."""
    return _sec_netlist("c1355", 24, 5)


def c499() -> LogicNetlist:
    """ISCAS'85 c499-class 26-bit single-error corrector
    (5608 junctions)."""
    return _sec_netlist("c499", 26, 5)


def c1908() -> LogicNetlist:
    """ISCAS'85 c1908-class 16-bit SEC/DED circuit, two banks
    (6988 junctions)."""
    gates: list[Gate] = []
    namer = NetNamer("c1908")
    bank_a = _sec_netlist("c1908a", 16, 5, with_ded=True)
    bank_b = _sec_netlist("c1908b", 16, 5, with_ded=True)
    inputs = list(bank_a.inputs) + [f"B{net}" for net in bank_b.inputs]
    outputs = list(bank_a.outputs) + [f"B{net}" for net in bank_b.outputs]
    gates.extend(bank_a.gates)
    for g in bank_b.gates:
        gates.append(
            Gate(
                f"B{g.name}", g.kind,
                tuple(f"B{n}" for n in g.inputs), f"B{g.output}",
            )
        )
    return LogicNetlist("c1908", inputs, outputs, gates)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class BenchmarkSpec:
    """One paper benchmark: generator plus published size."""

    name: str
    junctions: int
    builder: Callable[[], LogicNetlist]
    description: str

    @property
    def sets(self) -> int:
        return self.junctions // 2


#: the 15 benchmarks of Figs. 6-7, ordered by size as in the paper
BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec("2-to-10 decoder", 76, decoder_2to10, "2-bit line decoder"),
    BenchmarkSpec("Full-Adder", 100, full_adder_bench, "1-bit full adder"),
    BenchmarkSpec("74LS138", 168, decoder_74ls138, "3-to-8 decoder"),
    BenchmarkSpec("74LS153", 224, mux_74ls153, "dual 4:1 multiplexer"),
    BenchmarkSpec("s27a", 264, s27a, "ISCAS'89 s27 control logic, unrolled"),
    BenchmarkSpec("74148", 336, encoder_74148, "8-to-3 priority encoder"),
    BenchmarkSpec("74154", 360, decoder_74154, "4-to-16 decoder"),
    BenchmarkSpec("74LS47", 448, bcd_74ls47, "BCD to 7-segment decoder"),
    BenchmarkSpec("74LS280", 484, parity_74ls280, "9-bit parity generator"),
    BenchmarkSpec("54LS181", 944, alu_54ls181, "4-bit ALU"),
    BenchmarkSpec("s208-1", 1344, s208_1, "ISCAS'89 s208 counter logic, unrolled"),
    BenchmarkSpec("c432", 2072, c432, "36-input interrupt controller"),
    BenchmarkSpec("c1355", 4616, c1355, "16-bit SEC circuit"),
    BenchmarkSpec("c499", 5608, c499, "26-bit SEC circuit"),
    BenchmarkSpec("c1908", 6988, c1908, "dual 16-bit SEC/DED circuit"),
)


def benchmark_by_name(name: str) -> BenchmarkSpec:
    """Look up one of the paper's benchmarks by its published name."""
    for spec in BENCHMARKS:
        if spec.name == name:
            return spec
    raise NetlistError(f"unknown benchmark {name!r}")


def build_benchmark(
    name: str, params: LogicParameters | None = None
) -> MappedCircuit:
    """Generate, pad and map one paper benchmark.

    The mapped circuit's junction count equals the paper's published
    count exactly (the tests assert this for all 15).
    """
    spec = benchmark_by_name(name)
    netlist = spec.builder()
    padded = pad_to_set_count(netlist, spec.sets)
    mapped = map_to_circuit(padded, params)
    if mapped.n_junctions != spec.junctions:  # pragma: no cover - invariant
        raise NetlistError(
            f"{name}: mapped to {mapped.n_junctions} junctions, "
            f"expected {spec.junctions}"
        )
    return mapped
