"""Stimulus generation for logic benchmarks.

The Fig. 6/7 experiments apply an input step to a benchmark and watch
an output switch.  These helpers pick input vector pairs that provably
toggle at least one primary output (checked with boolean simulation),
so a delay is always defined.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import SimulationError
from repro.logic.netlist import LogicNetlist
from repro.parallel.seeds import as_seed_sequence


@dataclasses.dataclass(frozen=True)
class StepStimulus:
    """An input step: drive ``before``, settle, then drive ``after``.

    ``toggled_outputs`` lists the primary outputs whose boolean value
    changes, together with their final value.
    """

    before: dict[str, bool]
    after: dict[str, bool]
    toggled_outputs: tuple[tuple[str, bool], ...]


def random_vector(
    netlist: LogicNetlist, rng: np.random.Generator
) -> dict[str, bool]:
    """A uniformly random input assignment."""
    return {net: bool(rng.integers(0, 2)) for net in netlist.inputs}


def find_step_stimulus(
    netlist: LogicNetlist,
    rng: np.random.Generator | np.random.SeedSequence | int = 0,
    max_tries: int = 200,
    flip_bits: int = 1,
) -> StepStimulus:
    """Find an input step that toggles at least one primary output.

    Flips ``flip_bits`` random input bit(s) of a random base vector and
    keeps the pair if any output changes; deterministic for a fixed
    seed.  ``rng`` may be a ready ``Generator``, an integer seed or a
    spawned ``SeedSequence`` (callers sharing a root seed pass spawned
    children so their searches draw independent streams); an integer
    ``s`` and ``SeedSequence(s)`` produce bit-identical searches.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(as_seed_sequence(rng))
    for _ in range(max_tries):
        before = random_vector(netlist, rng)
        after = dict(before)
        inputs = list(netlist.inputs)
        for index in rng.choice(len(inputs), size=min(flip_bits, len(inputs)),
                                replace=False):
            net = inputs[int(index)]
            after[net] = not after[net]
        out_before = netlist.output_values(before)
        out_after = netlist.output_values(after)
        toggled = tuple(
            (net, out_after[net])
            for net in netlist.outputs
            if out_before[net] != out_after[net]
        )
        if toggled:
            return StepStimulus(before, after, toggled)
    raise SimulationError(
        f"{netlist.name}: no output-toggling step found in {max_tries} tries"
    )


def exhaustive_vectors(netlist: LogicNetlist) -> list[dict[str, bool]]:
    """All input assignments (only sensible for small benchmarks)."""
    n = len(netlist.inputs)
    if n > 16:
        raise SimulationError(f"{netlist.name}: too many inputs ({n}) to enumerate")
    vectors = []
    for code in range(2**n):
        vectors.append(
            {net: bool((code >> i) & 1) for i, net in enumerate(netlist.inputs)}
        )
    return vectors
