"""Nodal transient solver for the analytical SPICE baseline.

This is the paper's third simulation method: every SET is an analytical
device model (:mod:`repro.spice.model`) and the circuit is solved as a
continuous nodal network — backward-Euler time stepping with Newton
iteration, exactly the structure of a SPICE transient analysis.  It is
fast (no stochastic events) but ignores everything the paper says the
SPICE approach ignores: charge quantisation on wires, device-device
coupling and all secondary effects.  On some large benchmarks Newton
fails to converge — the same failure mode the paper reports for
74LS153, 54LS181 and c1908 (Fig. 6's missing bars).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.circuit.components import GROUND
from repro.constants import E_CHARGE
from repro.errors import ConvergenceError, SimulationError
from repro.logic.mapping import MappedCircuit
from repro.logic.stimuli import StepStimulus
from repro.physics.fermi import bose_weight
from repro.telemetry import registry as _telemetry

#: occupation window half-width for the batched device model
_WINDOW = 4


class BatchedSETModel:
    """Vectorised analytical model for all SETs of one logic family.

    Evaluates the stationary birth-death current of every device in a
    single set of numpy operations — the SPICE baseline spends nearly
    all its time here, so this must not be a Python loop.
    """

    def __init__(self, mapped: MappedCircuit):
        p = mapped.params
        d = len(mapped.devices)
        self.n_devices = d
        self.resistance = p.junction_resistance
        self.cj = p.junction_capacitance
        self.cg = p.gate_capacitance
        self.cb = p.bias_capacitance
        self.csig = 2.0 * self.cj + self.cg + self.cb
        self.temperature = p.temperature
        self.bias_charge = np.array(
            [dev.bias_e * E_CHARGE for dev in mapped.devices]
        )
        self._offsets = np.arange(-_WINDOW, _WINDOW + 1)

    def currents(
        self, vs: np.ndarray, vd: np.ndarray, vg: np.ndarray
    ) -> np.ndarray:
        """Device currents (A), positive ``source -> drain`` terminal.

        All arguments are per-device terminal voltages.
        """
        e = E_CHARGE
        induced = self.bias_charge + self.cj * (vs + vd) + self.cg * vg
        n0 = np.round(induced / e)
        states = n0[:, None] + self._offsets[None, :]          # (D, 9)
        v_isl = (induced[:, None] - states * e) / self.csig
        charging = 0.5 * e * e / self.csig

        denom = e * e * self.resistance
        dw_in1 = -e * (v_isl - vs[:, None]) + charging
        dw_out1 = -e * (vs[:, None] - v_isl) + charging
        dw_in2 = -e * (v_isl - vd[:, None]) + charging
        dw_out2 = -e * (vd[:, None] - v_isl) + charging
        in1 = bose_weight(dw_in1, self.temperature) / denom
        out1 = bose_weight(dw_out1, self.temperature) / denom
        in2 = bose_weight(dw_in2, self.temperature) / denom
        out2 = bose_weight(dw_out2, self.temperature) / denom

        up = in1 + in2                                          # n -> n+1
        down = out1 + out2                                      # n -> n-1
        tiny = 1e-300
        ratios = np.log(np.maximum(up[:, :-1], tiny)) - np.log(
            np.maximum(down[:, 1:], tiny)
        )
        log_pi = np.concatenate(
            [np.zeros((len(vs), 1)), np.cumsum(ratios, axis=1)], axis=1
        )
        log_pi -= log_pi.max(axis=1, keepdims=True)
        pi = np.exp(log_pi)
        pi /= pi.sum(axis=1, keepdims=True)
        return e * np.sum(pi * (out1 - in1), axis=1)


@dataclasses.dataclass
class TransientResult:
    """Recorded transient traces."""

    times: np.ndarray
    #: net label -> voltage trace
    traces: dict


class SpiceSimulator:
    """Backward-Euler/Newton transient solver over a mapped benchmark.

    Unknowns are the continuous voltages of all *wire* nodes (logic
    nets and stack nodes); device islands are abstracted into the
    analytical models.  Capacitors touching a device island are
    approximated as grounded loading on their other terminal, the
    standard lumping in compact-model flows.
    """

    def __init__(
        self,
        mapped: MappedCircuit,
        dt: float = 2e-11,
        newton_tol: float = 1e-6,
        max_newton: int = 40,
        max_step_voltage: float = 8e-3,
    ):
        self.mapped = mapped
        self.dt = dt
        self.newton_tol = newton_tol
        self.max_newton = max_newton
        self.max_step_voltage = max_step_voltage
        self.model = BatchedSETModel(mapped)

        circuit = mapped.circuit
        device_islands = {dev.island for dev in mapped.devices}
        self.unknown_nets = [
            label for label in circuit.island_labels if label not in device_islands
        ]
        self._unknown_index = {net: i for i, net in enumerate(self.unknown_nets)}
        n = len(self.unknown_nets)
        self.n_unknowns = n

        # known (source-driven) nets
        self.known_nets = [s.node for s in circuit.sources]
        self._known_index = {net: i for i, net in enumerate(self.known_nets)}

        # node capacitance matrices
        diag = np.zeros(n)
        rows, cols, vals = [], [], []
        krows, kcols, kvals = [], [], []

        def stamp(net_a, net_b, c):
            a_u = self._unknown_index.get(net_a)
            b_u = self._unknown_index.get(net_b)
            a_known = net_a in self._known_index
            b_known = net_b in self._known_index
            # caps to device islands or ground contribute only loading
            if a_u is not None:
                diag[a_u] += c
            if b_u is not None:
                diag[b_u] += c
            if a_u is not None and b_u is not None:
                rows.extend((a_u, b_u))
                cols.extend((b_u, a_u))
                vals.extend((-c, -c))
            elif a_u is not None and b_known:
                krows.append(a_u)
                kcols.append(self._known_index[net_b])
                kvals.append(c)
            elif b_u is not None and a_known:
                krows.append(b_u)
                kcols.append(self._known_index[net_a])
                kvals.append(c)

        for cap in circuit.capacitors:
            stamp(cap.node_a, cap.node_b, cap.capacitance)
        for junction in circuit.junctions:
            # junction capacitance loads the non-island terminal
            stamp(junction.node_a, junction.node_b, junction.capacitance)

        self._cn = sp.coo_matrix(
            (
                np.concatenate([diag, np.array(vals)]) if vals else diag,
                (
                    np.concatenate([np.arange(n), np.array(rows, dtype=int)])
                    if rows else np.arange(n),
                    np.concatenate([np.arange(n), np.array(cols, dtype=int)])
                    if cols else np.arange(n),
                ),
            ),
            shape=(n, n),
        ).tocsc()
        self._csrc = sp.coo_matrix(
            (np.array(kvals), (np.array(krows, dtype=int), np.array(kcols, dtype=int)))
            if kvals
            else (np.zeros(0), (np.zeros(0, dtype=int), np.zeros(0, dtype=int))),
            shape=(n, len(self.known_nets)),
        ).tocsr()

        # terminal resolution per device: (kind, index); kind 0 =
        # unknown node, 1 = known source, 2 = ground
        def resolve(net):
            if net in self._unknown_index:
                return (0, self._unknown_index[net])
            if net in self._known_index:
                return (1, self._known_index[net])
            if net == GROUND:
                return (2, 0)
            raise SimulationError(f"device terminal {net!r} is a device island")

        self._src_terms = [resolve(dev.source) for dev in mapped.devices]
        self._drn_terms = [resolve(dev.drain) for dev in mapped.devices]
        self._gate_terms = [resolve(dev.gate) for dev in mapped.devices]

    # ------------------------------------------------------------------
    def _gather(self, terms, x: np.ndarray, vknown: np.ndarray) -> np.ndarray:
        out = np.empty(len(terms))
        for i, (kind, idx) in enumerate(terms):
            if kind == 0:
                out[i] = x[idx]
            elif kind == 1:
                out[i] = vknown[idx]
            else:
                out[i] = 0.0
        return out

    def _device_currents(self, x, vknown):
        vs = self._gather(self._src_terms, x, vknown)
        vd = self._gather(self._drn_terms, x, vknown)
        vg = self._gather(self._gate_terms, x, vknown)
        return self.model.currents(vs, vd, vg), (vs, vd, vg)

    def _inject(self, currents: np.ndarray) -> np.ndarray:
        """KCL injection: +I leaves the source node, -I leaves drain."""
        f = np.zeros(self.n_unknowns)
        for i, (kind, idx) in enumerate(self._src_terms):
            if kind == 0:
                f[idx] += currents[i]
        for i, (kind, idx) in enumerate(self._drn_terms):
            if kind == 0:
                f[idx] -= currents[i]
        return f

    def _jacobian(self, x, vknown, vs, vd, vg, base_currents):
        """Numeric device transconductances assembled sparsely."""
        h = 1e-6
        rows, cols, vals = [], [], []

        def add_partials(terms, dI):
            for i, (kind, idx) in enumerate(terms):
                if kind != 0:
                    continue
                skind, sidx = self._src_terms[i]
                dkind, didx = self._drn_terms[i]
                if skind == 0:
                    rows.append(sidx)
                    cols.append(idx)
                    vals.append(dI[i])
                if dkind == 0:
                    rows.append(didx)
                    cols.append(idx)
                    vals.append(-dI[i])

        d_vs = (self.model.currents(vs + h, vd, vg) - base_currents) / h
        add_partials(self._src_terms, d_vs)
        d_vd = (self.model.currents(vs, vd + h, vg) - base_currents) / h
        add_partials(self._drn_terms, d_vd)
        d_vg = (self.model.currents(vs, vd, vg + h) - base_currents) / h
        add_partials(self._gate_terms, d_vg)
        return sp.coo_matrix(
            (np.array(vals), (np.array(rows, dtype=int), np.array(cols, dtype=int))),
            shape=(self.n_unknowns, self.n_unknowns),
        ).tocsc()

    # ------------------------------------------------------------------
    def _known_voltages(self, input_values: Mapping[str, bool]) -> np.ndarray:
        vdd = self.mapped.params.vdd
        v = np.zeros(len(self.known_nets))
        input_nets = set(self.mapped.netlist.inputs)
        for i, net in enumerate(self.known_nets):
            if net in input_nets:
                v[i] = vdd if input_values[net] else 0.0
            else:
                v[i] = vdd  # the supply rail
        return v

    def initial_voltages(self, input_values: Mapping[str, bool]) -> np.ndarray:
        """Boolean-informed starting point (mirrors the MC DC init)."""
        p = self.mapped.params
        values = self.mapped.netlist.evaluate(input_values)
        x = np.full(self.n_unknowns, 0.5 * p.vdd)
        for net, i in self._unknown_index.items():
            if net in values:
                level = p.high_fraction if values[net] else p.low_fraction
                x[i] = level * p.vdd
        return x

    def solve_step(
        self, x_prev: np.ndarray, vknown: np.ndarray, vknown_prev: np.ndarray
    ) -> np.ndarray:
        """One backward-Euler step with Newton iteration."""
        dt = self.dt
        x = x_prev.copy()
        dq_src = self._csrc @ (vknown - vknown_prev)
        for iteration in range(self.max_newton):
            currents, (vs, vd, vg) = self._device_currents(x, vknown)
            f = (self._cn @ (x - x_prev) - dq_src) / dt + self._inject(currents)
            jac = self._cn / dt + self._jacobian(x, vknown, vs, vd, vg, currents)
            try:
                delta = spla.spsolve(jac, -f)
            except RuntimeError as exc:
                raise ConvergenceError(f"linear solve failed: {exc}") from exc
            if not np.all(np.isfinite(delta)):
                raise ConvergenceError("Newton update is not finite")
            step = np.max(np.abs(delta))
            if step > self.max_step_voltage:
                delta *= self.max_step_voltage / step
            x = x + delta
            if step < self.newton_tol:
                reg = _telemetry.ACTIVE
                if reg is not None:
                    reg.counter("spice.steps").add()
                    reg.histogram("spice.newton_iterations").observe(
                        iteration + 1
                    )
                return x
        raise ConvergenceError(
            f"Newton did not converge in {self.max_newton} iterations "
            f"(residual step {step:.3g} V)"
        )

    # ------------------------------------------------------------------
    def transient(
        self,
        schedule: Sequence[tuple[Mapping[str, bool], float]],
        record_nets: Sequence[str] = (),
        initial: np.ndarray | None = None,
    ) -> TransientResult:
        """Run a piecewise-constant input schedule.

        ``schedule`` is a list of ``(input_vector, duration_seconds)``
        segments; sources step instantaneously between segments.
        """
        if not schedule:
            raise SimulationError("transient needs a non-empty schedule")
        first_vector = schedule[0][0]
        x = (
            initial.copy()
            if initial is not None
            else self.initial_voltages(first_vector)
        )
        vknown = self._known_voltages(first_vector)
        times = [0.0]
        traces = {net: [x[self._unknown_index[net]]] for net in record_nets}
        t = 0.0
        with _telemetry.span(
            "spice.transient", category="spice",
            segments=len(schedule), unknowns=self.n_unknowns,
        ):
            for vector, duration in schedule:
                vknown_new = self._known_voltages(vector)
                steps = max(1, int(round(duration / self.dt)))
                for k in range(steps):
                    x = self.solve_step(x, vknown_new, vknown)
                    vknown = vknown_new
                    t += self.dt
                    times.append(t)
                    for net in record_nets:
                        traces[net].append(x[self._unknown_index[net]])
        return TransientResult(
            np.array(times), {net: np.array(v) for net, v in traces.items()}
        )

    def propagation_delay(
        self,
        stimulus: StepStimulus,
        output_net: str | None = None,
        settle: float = 2e-9,
        budget: float = 60e-9,
    ) -> float:
        """Input-step to output-threshold-crossing delay (seconds)."""
        if output_net is None:
            output_net, final_high = stimulus.toggled_outputs[0]
        else:
            final_high = dict(stimulus.toggled_outputs)[output_net]
        result = self.transient(
            [(stimulus.before, settle), (stimulus.after, budget)],
            record_nets=[output_net],
        )
        threshold = self.mapped.params.logic_threshold
        trace = result.traces[output_net]
        after = result.times >= settle
        past = (trace > threshold) if final_high else (trace < threshold)
        hits = np.flatnonzero(after & past)
        if len(hits) == 0:
            raise ConvergenceError(
                f"SPICE output {output_net!r} never crossed the threshold — "
                "incorrect logic output (the paper reports this failure mode)"
            )
        return float(result.times[hits[0]] - settle)
