"""Compact analytical SET model (the paper's SPICE baseline).

The paper compares against "an extended version of the model designed
by Inokawa et al. [10]" — an analytical steady-state description of a
single SET with multiple gates.  We implement a model of the same
class: for one island between two junctions, the stationary current
follows in closed form from the single-island birth-death chain of the
orthodox theory,

.. math::

    \\pi_{n+1} / \\pi_n = u_n / d_{n+1},

where ``u_n``/``d_n`` are the total electron add/remove rates in
occupation state ``n``.  Like the Inokawa model (and unlike the MC
engine) this treats every device independently: no island-island
coupling, no cotunneling, no superconductivity — exactly the
limitations the paper attributes to the SPICE approach (Sec. I).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.constants import E_CHARGE
from repro.errors import PhysicsError
from repro.physics.orthodox import orthodox_rate

#: occupation states considered on each side of the optimum
_STATE_WINDOW = 4


@dataclasses.dataclass(frozen=True)
class SETDeviceModel:
    """Analytical model of one SET.

    Parameters
    ----------
    r1, c1:
        Source-side junction resistance and capacitance (source -
        island).
    r2, c2:
        Drain-side junction (island - drain).
    gate_capacitances:
        One entry per gate terminal.
    bias_charge_e:
        Fixed offset charge on the island (units of ``e``) — how the
        nSET/pSET shift is realised.
    temperature:
        Kelvin.
    """

    r1: float
    c1: float
    r2: float
    c2: float
    gate_capacitances: tuple[float, ...]
    bias_charge_e: float = 0.0
    temperature: float = 4.2

    def __post_init__(self) -> None:
        if min(self.r1, self.r2, self.c1, self.c2) <= 0.0:
            raise PhysicsError("junction parameters must be > 0")

    @property
    def total_capacitance(self) -> float:
        return self.c1 + self.c2 + sum(self.gate_capacitances)

    # ------------------------------------------------------------------
    def current(
        self,
        v_source: float,
        v_drain: float,
        gate_voltages: tuple[float, ...] | list[float],
    ) -> float:
        """Stationary drain-source current (A), positive source->drain.

        The island potential in state ``n`` is
        ``v(n) = (q0 - n e + C1 Vs + C2 Vd + sum Cg Vg) / C_sigma``;
        the four tunneling rates per state follow Eq. 1/2 and the
        birth-death stationary distribution is the product formula.
        """
        if len(gate_voltages) != len(self.gate_capacitances):
            raise PhysicsError(
                f"need {len(self.gate_capacitances)} gate voltage(s), "
                f"got {len(gate_voltages)}"
            )
        csig = self.total_capacitance
        induced = (
            self.bias_charge_e * E_CHARGE
            + self.c1 * v_source
            + self.c2 * v_drain
            + sum(c * v for c, v in zip(self.gate_capacitances, gate_voltages))
        )
        e2 = E_CHARGE * E_CHARGE

        def island_potential(n: int) -> float:
            return (induced - n * E_CHARGE) / csig

        def rates(n: int) -> tuple[float, float, float, float]:
            """(in via j1, out via j1, in via j2, out via j2) at state n."""
            v_isl = island_potential(n)
            charging = 0.5 * e2 / csig
            # electron source -> island
            dw_in1 = -E_CHARGE * (v_isl - v_source) + charging
            # electron island -> source
            dw_out1 = -E_CHARGE * (v_source - v_isl) + charging
            dw_in2 = -E_CHARGE * (v_isl - v_drain) + charging
            dw_out2 = -E_CHARGE * (v_drain - v_isl) + charging
            return (
                float(orthodox_rate(dw_in1, self.r1, self.temperature)),
                float(orthodox_rate(dw_out1, self.r1, self.temperature)),
                float(orthodox_rate(dw_in2, self.r2, self.temperature)),
                float(orthodox_rate(dw_out2, self.r2, self.temperature)),
            )

        # centre the state window on the electrostatic optimum
        n0 = int(round(induced / E_CHARGE))
        states = range(n0 - _STATE_WINDOW, n0 + _STATE_WINDOW + 1)

        log_pi = [0.0]
        rate_table = {n: rates(n) for n in states}
        state_list = list(states)
        for n in state_list[:-1]:
            up = rate_table[n][0] + rate_table[n][2]          # n -> n+1
            down = rate_table[n + 1][1] + rate_table[n + 1][3]  # n+1 -> n
            if up <= 0.0 and down <= 0.0:
                log_pi.append(log_pi[-1] - 700.0)
            else:
                # difference of logs: the ratio itself can overflow when
                # one direction is astronomically favoured
                log_ratio = np.log(max(up, 1e-300)) - np.log(max(down, 1e-300))
                log_pi.append(log_pi[-1] + float(log_ratio))
        log_pi = np.array(log_pi)
        pi = np.exp(log_pi - log_pi.max())
        pi /= pi.sum()

        current = 0.0
        for weight, n in zip(pi, state_list):
            in1, out1, _, _ = rate_table[n]
            # Electrons leaving through the source junction (out1)
            # carry -e to the source, i.e. conventional current flows
            # source -> island: positive by our convention.
            current += weight * (out1 - in1)
        return E_CHARGE * current


def nset_model(
    r: float, cj: float, cg: float, cb: float, bias_e: float, temperature: float
) -> SETDeviceModel:
    """Convenience constructor matching the logic family's nSET/pSET."""
    return SETDeviceModel(
        r1=r, c1=cj, r2=r, c2=cj,
        gate_capacitances=(cg, cb),
        bias_charge_e=bias_e,
        temperature=temperature,
    )
