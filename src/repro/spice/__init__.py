"""Analytical SPICE-style baseline (compact SET model + MNA transient)."""

from __future__ import annotations

from repro.spice.model import SETDeviceModel, nset_model
from repro.spice.transient import BatchedSETModel, SpiceSimulator, TransientResult

__all__ = [
    "BatchedSETModel",
    "SETDeviceModel",
    "SpiceSimulator",
    "TransientResult",
    "nset_model",
]
