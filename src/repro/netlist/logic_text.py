"""Text format for logic netlists.

The paper mentions "a parser which supports logic representation of
circuit netlist, such as NAND and NOR network, allowing circuit
designers to describe large-scale circuits" — this is that front end.
Format::

    # comment
    name half_adder
    input a b
    output s c
    xor2 g1 a b s
    and2 g2 a b c

Gate lines are ``<kind> <gate-name> <inputs...> <output>``.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.logic.netlist import ARITY, Gate, GateKind, LogicNetlist

_KIND_BY_NAME = {kind.value: kind for kind in GateKind}


def parse_logic(text: str) -> LogicNetlist:
    """Parse a logic netlist from text."""
    name = "netlist"
    inputs: list[str] = []
    outputs: list[str] = []
    gates: list[Gate] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword = fields[0].lower()
        if keyword == "name":
            if len(fields) < 2:
                raise NetlistError("'name' needs a value", line_number)
            name = fields[1]
        elif keyword == "input":
            inputs.extend(fields[1:])
        elif keyword == "output":
            outputs.extend(fields[1:])
        elif keyword in _KIND_BY_NAME:
            kind = _KIND_BY_NAME[keyword]
            arity = ARITY[kind]
            if len(fields) != 2 + arity + 1:
                raise NetlistError(
                    f"{keyword} expects a gate name, {arity} input(s) and an "
                    f"output, got {len(fields) - 1} fields",
                    line_number,
                )
            gate_name = fields[1]
            gates.append(
                Gate(gate_name, kind, tuple(fields[2:2 + arity]), fields[-1])
            )
        else:
            raise NetlistError(f"unknown gate or directive {keyword!r}", line_number)
    if not inputs:
        raise NetlistError("netlist declares no inputs")
    try:
        return LogicNetlist(name, inputs, outputs, gates)
    except NetlistError:
        raise


def write_logic(netlist: LogicNetlist) -> str:
    """Render a logic netlist as text (inverse of :func:`parse_logic`)."""
    lines = [f"name {netlist.name.replace(' ', '_')}"]
    lines.append("input " + " ".join(netlist.inputs))
    lines.append("output " + " ".join(netlist.outputs))
    for gate in netlist.topological_gates():
        lines.append(
            f"{gate.kind.value} {gate.name.replace(' ', '_')} "
            + " ".join(gate.inputs) + f" {gate.output}"
        )
    lines.append("")
    return "\n".join(lines)
