"""Text format for logic netlists.

The paper mentions "a parser which supports logic representation of
circuit netlist, such as NAND and NOR network, allowing circuit
designers to describe large-scale circuits" — this is that front end.
Format::

    # comment
    name half_adder
    input a b
    output s c
    xor2 g1 a b s
    and2 g2 a b c

Gate lines are ``<kind> <gate-name> <inputs...> <output>``.

Parsing is two-stage: :func:`scan_logic` tokenises into a
:class:`RawNetlist` that records *where* every gate came from but does
no semantic validation (the static analyzer in :mod:`repro.lint` works
on this form so it can report undriven nets, loops and multiple drivers
as diagnostics instead of crashing on the first one);
:func:`parse_logic` then promotes the raw form to a validated
:class:`~repro.logic.netlist.LogicNetlist`.
"""

from __future__ import annotations

import dataclasses

from repro.errors import NetlistError
from repro.logic.netlist import ARITY, Gate, GateKind, LogicNetlist

_KIND_BY_NAME = {kind.value: kind for kind in GateKind}


@dataclasses.dataclass(frozen=True)
class RawGate:
    """One tokenised gate line, semantically unvalidated."""

    kind: GateKind
    name: str
    inputs: tuple[str, ...]
    output: str
    line: int


@dataclasses.dataclass
class RawNetlist:
    """Tokenised netlist text: structure plus source locations."""

    name: str = "netlist"
    inputs: list[str] = dataclasses.field(default_factory=list)
    outputs: list[str] = dataclasses.field(default_factory=list)
    gates: list[RawGate] = dataclasses.field(default_factory=list)
    #: first declaration line of each primary input/output net
    input_lines: dict[str, int] = dataclasses.field(default_factory=dict)
    output_lines: dict[str, int] = dataclasses.field(default_factory=dict)


def scan_logic(text: str) -> RawNetlist:
    """Tokenise a logic netlist; raises only for unparseable lines."""
    raw = RawNetlist()
    for line_number, line_text in enumerate(text.splitlines(), start=1):
        line = line_text.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword = fields[0].lower()
        if keyword == "name":
            if len(fields) < 2:
                raise NetlistError("'name' needs a value", line_number)
            raw.name = fields[1]
        elif keyword == "input":
            for net in fields[1:]:
                raw.inputs.append(net)
                raw.input_lines.setdefault(net, line_number)
        elif keyword == "output":
            for net in fields[1:]:
                raw.outputs.append(net)
                raw.output_lines.setdefault(net, line_number)
        elif keyword in _KIND_BY_NAME:
            kind = _KIND_BY_NAME[keyword]
            arity = ARITY[kind]
            if len(fields) != 2 + arity + 1:
                raise NetlistError(
                    f"{keyword} expects a gate name, {arity} input(s) and an "
                    f"output, got {len(fields) - 1} fields",
                    line_number,
                )
            raw.gates.append(RawGate(
                kind, fields[1], tuple(fields[2:2 + arity]), fields[-1],
                line_number,
            ))
        else:
            raise NetlistError(f"unknown gate or directive {keyword!r}", line_number)
    if not raw.inputs:
        raise NetlistError("netlist declares no inputs")
    return raw


def parse_logic(text: str) -> LogicNetlist:
    """Parse and validate a logic netlist from text."""
    raw = scan_logic(text)
    gates = []
    for rg in raw.gates:
        try:
            gates.append(Gate(rg.name, rg.kind, rg.inputs, rg.output))
        except NetlistError as exc:
            if exc.line_number is None:
                raise NetlistError(str(exc), rg.line) from None
            raise
    return LogicNetlist(raw.name, raw.inputs, raw.outputs, gates)


def write_logic(netlist: LogicNetlist) -> str:
    """Render a logic netlist as text (inverse of :func:`parse_logic`)."""
    lines = [f"name {netlist.name.replace(' ', '_')}"]
    lines.append("input " + " ".join(netlist.inputs))
    lines.append("output " + " ".join(netlist.outputs))
    for gate in netlist.topological_gates():
        lines.append(
            f"{gate.kind.value} {gate.name.replace(' ', '_')} "
            + " ".join(gate.inputs) + f" {gate.output}"
        )
    lines.append("")
    return "\n".join(lines)
