"""SEMSIM input decks and logic netlist text I/O."""

from __future__ import annotations

from repro.netlist.logic_text import parse_logic, write_logic
from repro.netlist.semsim import RecordSpec, SemsimDeck, SweepSpec, parse_semsim
from repro.netlist.writer import write_semsim

__all__ = [
    "RecordSpec",
    "SemsimDeck",
    "SweepSpec",
    "parse_logic",
    "parse_semsim",
    "write_logic",
    "write_semsim",
]
