"""Serialise circuits back to the SEMSIM input format.

Round-tripping (`parse_semsim(write_semsim(deck)) == deck`-ish) is
covered by the tests; the writer is also what the logic front end uses
to export generated benchmark circuits for inspection.
"""

from __future__ import annotations

from repro.constants import EV
from repro.netlist.semsim import SemsimDeck


def write_semsim(deck: SemsimDeck, *, precise: bool = False) -> str:
    """Render a deck as SEMSIM input text.

    With ``precise=True`` every float is rendered with ``repr`` (the
    shortest string that round-trips to the identical IEEE value)
    instead of ``%g``; the scenario generator uses this so a reproducer
    deck *is* its case, bit for bit.
    """
    fmt = repr if precise else "{:g}".format
    lines: list[str] = ["#SET component definitions"]
    for name, a, b, conductance, capacitance in deck.junctions:
        lines.append(
            f"junc {name} {a} {b} {fmt(conductance)} {fmt(capacitance)}"
        )
    for a, b, capacitance in deck.capacitors:
        lines.append(f"cap {a} {b} {fmt(capacitance)}")
    for node, q in deck.charges:
        lines.append(f"charge {node} {fmt(q)}")

    lines.append("")
    lines.append("#Input source information")
    for node, voltage in deck.sources:
        lines.append(f"vdc {node} {fmt(voltage)}")
    if deck.symmetric_node is not None:
        lines.append(f"symm {deck.symmetric_node}")
    if deck.superconductor is not None:
        lines.append(
            f"super {fmt(deck.superconductor.delta0 / EV)} "
            f"{fmt(deck.superconductor.tc)}"
        )

    lines.append("")
    lines.append("#Overall node information")
    lines.append(f"num j {len(deck.junctions)}")
    lines.append(f"num ext {len(deck.sources)}")
    nodes = set()
    for _, a, b, _, _ in deck.junctions:
        nodes.update((a, b))
    for a, b, _ in deck.capacitors:
        nodes.update((a, b))
    nodes.discard("0")
    lines.append(f"num nodes {len(nodes)}")

    lines.append("")
    lines.append("#Simulation specific information")
    lines.append(f"temp {fmt(deck.temperature)}")
    if deck.cotunnel:
        lines.append("cotunnel")
    if deck.record is not None:
        lines.append(
            f"record {deck.record.first_junction} {deck.record.last_junction} "
            f"{deck.record.interval}"
        )
    lines.append(f"jumps {deck.jumps} {deck.runs}")
    if deck.sweep is not None:
        lines.append(
            f"sweep {deck.sweep.node} {fmt(deck.sweep.maximum)} "
            f"{fmt(deck.sweep.step)}"
        )
    lines.append("")
    return "\n".join(lines)
