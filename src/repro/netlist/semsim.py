"""The SEMSIM SPICE-like input format (Example Input File 1).

The paper drives the simulator from a text deck::

    #SET component definitions
    junc 1 1 4 1e-6 1e-18
    junc 2 2 4 1e-6 1e-18
    cap 3 4 3e-18
    charge 4 0.0

    #Input source information
    vdc 1 0.02
    vdc 2 -0.02
    vdc 3 0.0
    symm 1

    #Overall node information
    num j 2
    num ext 3
    num nodes 4

    #Simulation specific information
    temp 5
    cotunnel
    record 1 2 2
    jumps 100000 1
    sweep 2 0.02 0.00005

Directive semantics (documented here because the paper only shows the
example):

``junc <id> <node1> <node2> <G_S> <C_F>``
    Tunnel junction with conductance in siemens (the example's ``1e-6``
    for a 1 MOhm junction) and capacitance in farads.
``cap <node1> <node2> <C_F>`` / ``charge <node> <q/e>`` / ``vdc <node> <V>``
    Capacitor, island background charge, DC source.
``symm <node>``
    Symmetric-bias mode: when the sweep drives its target node to
    ``V``, node ``<node>`` is driven to ``-V`` (the paper's Fig. 1
    setup, giving a total drain-source swing of twice the sweep range).
``super <delta0_eV> <tc_K>``
    Declare the whole circuit superconducting.
``num j|ext|nodes <n>``
    Declared counts, validated against the parsed component lists.
``temp <K>`` / ``cotunnel``
    Temperature and second-order cotunneling enable.
``record <j_first> <j_last> <interval>``
    Junctions (1-based id range) whose current is recorded, sampled
    every ``interval`` events.
``jumps <count> <runs>``
    Tunnel events per operating point and number of independent runs.
``sweep <node> <max_V> <step_V>``
    Sweep the source on ``node`` from ``-max`` to ``+max`` inclusive.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.circuit.builder import CircuitBuilder
from repro.circuit.circuit import Circuit
from repro.circuit.components import Superconductor
from repro.constants import EV
from repro.core.config import SimulationConfig
from repro.core.engine import MonteCarloEngine
from repro.core.sweep import IVCurve
from repro.errors import NetlistError, SimulationError
from repro.monitor.ledger import run_scope
from repro.telemetry import registry as _telemetry

if TYPE_CHECKING:
    from repro.campaign.store import CampaignStore
    from repro.recovery.checkpoint import CheckpointStore
    from repro.recovery.policy import ExecutionPolicy


@dataclasses.dataclass
class SweepSpec:
    node: str
    maximum: float
    step: float

    def values(self) -> np.ndarray:
        n = int(round(2.0 * self.maximum / self.step)) + 1
        return np.linspace(-self.maximum, self.maximum, n)


@dataclasses.dataclass
class RecordSpec:
    first_junction: int
    last_junction: int
    interval: int


@dataclasses.dataclass
class SemsimDeck:
    """Parsed SEMSIM input file."""

    junctions: list[tuple[str, str, str, float, float]]
    capacitors: list[tuple[str, str, float]]
    charges: list[tuple[str, float]]
    sources: list[tuple[str, float]]
    symmetric_node: str | None = None
    superconductor: Superconductor | None = None
    temperature: float = 4.2
    cotunnel: bool = False
    record: RecordSpec | None = None
    jumps: int = 100_000
    runs: int = 1
    sweep: SweepSpec | None = None
    declared_junctions: int | None = None
    declared_external: int | None = None
    declared_nodes: int | None = None
    #: source line of each directive, keyed e.g. ``"junc 1"``, ``"num j"``,
    #: ``"vdc 2"``, ``"sweep"``; populated by :func:`parse_semsim` so
    #: post-parse validation can report locations.  Excluded from
    #: equality so written-then-reparsed decks still compare equal.
    directive_lines: dict[str, int] = dataclasses.field(
        default_factory=dict, compare=False, repr=False
    )

    # ------------------------------------------------------------------
    def line_of(self, directive: str) -> int | None:
        """Source line of a directive key, if the deck came from text."""
        return self.directive_lines.get(directive)

    def validation_problems(self) -> list[tuple[str, int | None]]:
        """Cross-check declared counts against the parsed components.

        Returns ``(message, line_number)`` pairs instead of raising, so
        the static analyzer can report *every* mismatch; line numbers
        point at the offending ``num``/``junc`` directive when the deck
        was parsed from text.
        """
        problems: list[tuple[str, int | None]] = []
        if not self.junctions:
            problems.append(("deck contains no junctions", None))
        if self.declared_junctions is not None and (
            self.declared_junctions != len(self.junctions)
        ):
            problems.append((
                f"'num j {self.declared_junctions}' but {len(self.junctions)} "
                "junctions defined",
                self.line_of("num j"),
            ))
        if self.declared_external is not None and (
            self.declared_external != len(self.sources)
        ):
            problems.append((
                f"'num ext {self.declared_external}' but {len(self.sources)} "
                "sources defined",
                self.line_of("num ext"),
            ))
        nodes = set()
        for name, a, b, _, _ in self.junctions:
            nodes.update((a, b))
        for a, b, _ in self.capacitors:
            nodes.update((a, b))
        nodes.discard("0")
        if self.declared_nodes is not None and self.declared_nodes != len(nodes):
            problems.append((
                f"'num nodes {self.declared_nodes}' but {len(nodes)} "
                "non-ground nodes referenced",
                self.line_of("num nodes"),
            ))
        return problems

    def validate(self) -> None:
        """Raise :class:`NetlistError` (with a location when known) for
        the first cross-check failure; see :meth:`validation_problems`."""
        problems = self.validation_problems()
        if problems:
            message, line = problems[0]
            raise NetlistError(message, line)

    def build_circuit(self, strict: bool = False) -> Circuit:
        """Materialise the deck as a frozen circuit.

        With ``strict=True`` the deck is first run through the static
        analyzer (:func:`repro.lint.lint_deck`) and a
        :class:`repro.errors.LintError` is raised if any error-severity
        diagnostics are found — catching defects like floating islands
        *before* the electrostatics backend hits a singular matrix.
        """
        if strict:
            from repro.lint import require_clean_deck

            require_clean_deck(self)
        self.validate()
        return self.unchecked_circuit()

    def unchecked_circuit(self) -> Circuit:
        """Materialise the deck without running the deck cross-checks.

        Used by the static analyzer, which has already reported count
        mismatches as diagnostics and still wants a circuit to run the
        topology/physics passes on.  The builder's own invariants
        (positive values, sane sources) still apply.
        """
        builder = CircuitBuilder()
        for name, a, b, conductance, capacitance in self.junctions:
            builder.add_junction(f"j{name}", a, b, 1.0 / conductance, capacitance)
        for i, (a, b, capacitance) in enumerate(self.capacitors):
            builder.add_capacitor(f"c{i+1}", a, b, capacitance)
        for node, q in self.charges:
            if q:
                builder.add_background_charge(node, q)
        for node, voltage in self.sources:
            builder.add_voltage_source(f"v{node}", node, voltage)
        builder.set_superconductor(self.superconductor)
        return builder.build()

    def config(self, solver: str = "adaptive", seed: int = 0) -> SimulationConfig:
        return SimulationConfig(
            temperature=self.temperature,
            solver=solver,
            include_cotunneling=self.cotunnel,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def recorded_junctions(self, circuit: Circuit) -> list[int]:
        """Indices of the junctions named by the record directive."""
        if self.record is None:
            return [0]
        out = []
        for jid in range(self.record.first_junction, self.record.last_junction + 1):
            out.append(circuit.junction_index(f"j{jid}"))
        return out

    def run(
        self,
        solver: str = "adaptive",
        seed: int = 0,
        jobs: int = 1,
        chunks: int = 1,
        dsan: bool = False,
        checkpoint: "CheckpointStore | None" = None,
        policy: "ExecutionPolicy | None" = None,
        campaign: "CampaignStore | None" = None,
    ) -> IVCurve:
        """Execute the deck: sweep if requested, one point otherwise.

        The returned curve carries the cumulative
        :class:`repro.core.base.SolverStats` of the run in its
        ``stats`` field.

        ``jobs`` distributes the work over worker processes and
        ``chunks`` splits the sweep into independently seeded voltage
        chunks (see :func:`repro.core.sweep.sweep_iv`); the defaults
        run the historical serial path byte-for-byte.  A deck asking
        for several independent runs (``jumps <count> <runs>`` with
        ``runs > 1``) is executed as an ensemble whose replicas are
        averaged into the returned curve.

        ``dsan`` enables the runtime determinism sanitizer's
        event-stream hash: every solver maintains an order-sensitive
        digest of its realised events, the per-shard digests fold into
        the returned curve's ``event_hash``, and the sweep is routed
        through the shard/merge path even at ``jobs=1``/``chunks=1`` so
        the serial and parallel executions take the *same* code (the
        one-chunk layout is documented byte-identical to the serial
        loop).  Arm :func:`repro.dsan.runtime.dsan_mode` around the
        call to additionally verify the pool boundary.

        ``checkpoint`` (a :class:`repro.recovery.CheckpointStore`)
        persists each completed shard to a resumable manifest — this
        also forces the shard/merge path and turns event hashing on, so
        a resumed run can prove it reproduced the uninterrupted
        combined hash; ``policy`` (an
        :class:`repro.recovery.ExecutionPolicy`) adds per-shard
        retry/timeout fault tolerance.

        ``campaign`` (a :class:`repro.campaign.CampaignStore`) consults
        the durable content-addressed result cache before simulating:
        sweep shards already in the store are replayed, fresh ones are
        persisted as they land.  Like ``checkpoint`` it forces the
        shard/merge path and event-stream hashing, so a fully cached
        re-run returns bit-identical arrays with the same combined
        event hash.
        """
        with _telemetry.span("deck.build", category="deck"):
            circuit = self.build_circuit()
        config = self.config(solver, seed)
        if dsan or checkpoint is not None or campaign is not None:
            config = config.replace(event_hash=True)
        with run_scope("deck.run") as recorder:
            curve = self._execute_deck(
                circuit, config, jobs=jobs, chunks=chunks,
                checkpoint=checkpoint, policy=policy, campaign=campaign,
            )
            if recorder is not None:
                recorder.commit(
                    circuit=circuit, config=config,
                    values=self.sweep.values() if self.sweep is not None else None,
                    jumps_per_point=self.jumps, label=curve.label,
                    solver=solver, seed=seed, jobs=jobs, chunks=chunks,
                    replicas=self.runs if self.runs > 1 else None,
                    stats=curve.stats, event_hash=curve.event_hash,
                )
        return curve

    def _execute_deck(
        self,
        circuit: Circuit,
        config: SimulationConfig,
        jobs: int,
        chunks: int,
        checkpoint: "CheckpointStore | None" = None,
        policy: "ExecutionPolicy | None" = None,
        campaign: "CampaignStore | None" = None,
    ) -> IVCurve:
        """The deck's execution body (see :meth:`run`), factored out so
        the run-ledger scope wraps every path uniformly."""
        dsan = config.event_hash
        junctions = self.recorded_junctions(circuit)
        # series junctions through one island alternate orientation;
        # infer each junction's sign from its position relative to the
        # first recorded junction's island
        orientations = _series_orientations(circuit, junctions)
        if self.sweep is None:
            if checkpoint is not None:
                raise SimulationError(
                    "checkpoint/resume needs a sweep deck: an operating-"
                    "point deck runs as a single unsharded measurement"
                )
            if campaign is not None:
                raise SimulationError(
                    "--campaign needs a sweep deck: an operating-point "
                    "deck runs as a single unsharded measurement"
                )
            engine = MonteCarloEngine(circuit, config)
            with _telemetry.span("deck.run", category="deck", points=1):
                current = engine.measure_current(
                    junctions, self.jumps, orientations=orientations
                )
            return IVCurve(
                np.zeros(1), np.array([current]), "operating point",
                stats=dataclasses.replace(engine.solver.stats),
                event_hash=engine.event_hash(),
            )
        values = self.sweep.values()
        if (
            jobs != 1 or chunks != 1 or self.runs > 1 or dsan
            or checkpoint is not None or policy is not None
            or campaign is not None
        ):
            return self._run_sharded(
                circuit, config, values, junctions, orientations,
                jobs=jobs, chunks=chunks,
                checkpoint=checkpoint, policy=policy, campaign=campaign,
            )
        engine = MonteCarloEngine(circuit, config)
        currents = np.empty_like(values)
        with _telemetry.span(
            "deck.run", category="deck", points=len(values),
        ):
            for i, v in enumerate(values):
                targets = {f"v{self.sweep.node}": float(v)}
                if self.symmetric_node is not None:
                    targets[f"v{self.symmetric_node}"] = -float(v)
                with _telemetry.span(
                    "deck.point", category="deck", v=float(v),
                ):
                    engine.set_sources(targets)
                    currents[i] = engine.measure_current(
                        junctions, self.jumps, orientations=orientations
                    )
        return IVCurve(
            values, currents, f"sweep node {self.sweep.node}",
            stats=dataclasses.replace(engine.solver.stats),
        )

    def _run_sharded(
        self,
        circuit: Circuit,
        config: SimulationConfig,
        values: np.ndarray,
        junctions: list[int],
        orientations: list[int],
        jobs: int,
        chunks: int,
        checkpoint: "CheckpointStore | None" = None,
        policy: "ExecutionPolicy | None" = None,
        campaign: "CampaignStore | None" = None,
    ) -> IVCurve:
        """Sweep through the shard/merge layer (``jobs``/``chunks``/
        ensemble ``runs``) instead of the in-place serial loop."""
        from repro.core.sweep import sweep_iv
        from repro.parallel import ensemble_iv

        assert self.sweep is not None
        setter = DeckSweepSetter(
            f"v{self.sweep.node}",
            f"v{self.symmetric_node}" if self.symmetric_node is not None else None,
        )
        label = f"sweep node {self.sweep.node}"
        with _telemetry.span(
            "deck.run", category="deck",
            points=len(values), jobs=jobs, chunks=chunks, runs=self.runs,
        ):
            if self.runs > 1:
                ensemble = ensemble_iv(
                    circuit, values, self.runs, config,
                    jumps_per_point=self.jumps,
                    measure_junctions=junctions,
                    orientations=orientations,
                    source_setter=setter,
                    label=label,
                    jobs=jobs,
                    checkpoint=checkpoint,
                    policy=policy,
                    campaign=campaign,
                )
                return ensemble.mean_curve()
            return sweep_iv(
                circuit, values, config,
                jumps_per_point=self.jumps,
                measure_junctions=junctions,
                orientations=orientations,
                source_setter=setter,
                label=label,
                chunks=chunks,
                jobs=jobs,
                checkpoint=checkpoint,
                policy=policy,
                campaign=campaign,
            )


@dataclasses.dataclass
class DeckSweepSetter:
    """Picklable source setter for a deck sweep: drives the swept node
    and, in ``symm`` mode, its mirror node to the opposite voltage."""

    source: str
    symmetric_source: str | None = None

    def __call__(self, v: float) -> dict:
        targets = {self.source: float(v)}
        if self.symmetric_source is not None:
            targets[self.symmetric_source] = -float(v)
        return targets


def _series_orientations(circuit: Circuit, junctions: list[int]) -> list[int]:
    """Orient series junctions so their device currents add coherently.

    Walks the recorded junctions as a transport chain starting from the
    first junction's ``node_a``: a junction traversed ``a -> b`` along
    the chain keeps +1, one traversed ``b -> a`` gets -1.  For the
    paper's ``record 1 2`` SET idiom this yields (+1, -1), so both
    series junctions measure the same device current instead of
    cancelling.
    """
    resolved = circuit.resolved_junctions()
    orientations: list[int] = []
    current = resolved[junctions[0]].ref_a
    for j in junctions:
        rj = resolved[j]
        if rj.ref_a == current:
            orientations.append(+1)
            current = rj.ref_b
        elif rj.ref_b == current:
            orientations.append(-1)
            current = rj.ref_a
        else:
            # not chained to the previous junction; measure it as-is
            orientations.append(+1)
            current = rj.ref_b
    return orientations


def parse_semsim(
    text: str, strict: bool = False, *, validate: bool = True
) -> SemsimDeck:
    """Parse a SEMSIM input deck from text.

    With ``strict=True`` the parsed deck is additionally run through
    the static analyzer and a :class:`repro.errors.LintError` is raised
    if any error-severity diagnostics are found.  ``validate=False``
    skips the post-parse count cross-checks (used by the static
    analyzer, which reports them as ``SEM002`` diagnostics instead of
    raising on the first one).
    """
    deck = SemsimDeck([], [], [], [])
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword, args = fields[0].lower(), fields[1:]
        try:
            _dispatch(deck, keyword, args, line_number)
        except (ValueError, IndexError) as exc:
            raise NetlistError(f"bad {keyword!r} directive: {exc}", line_number)
        except NetlistError as exc:
            if exc.line_number is None:
                raise NetlistError(str(exc), line_number) from None
            raise
    if validate:
        deck.validate()
    if strict:
        from repro.lint import require_clean_deck

        require_clean_deck(deck)
    return deck


def _dispatch(
    deck: SemsimDeck, keyword: str, args: list[str], line: int | None = None
) -> None:
    def remember(key: str) -> None:
        if line is not None:
            deck.directive_lines.setdefault(key, line)

    if keyword == "junc":
        name, a, b = args[0], args[1], args[2]
        conductance, capacitance = float(args[3]), float(args[4])
        if conductance <= 0.0:
            raise NetlistError(f"junction {name}: conductance must be > 0")
        deck.junctions.append((name, a, b, conductance, capacitance))
        remember(f"junc {name}")
    elif keyword == "cap":
        deck.capacitors.append((args[0], args[1], float(args[2])))
        remember(f"cap {len(deck.capacitors)}")
    elif keyword == "charge":
        deck.charges.append((args[0], float(args[1])))
        remember(f"charge {args[0]}")
    elif keyword == "vdc":
        deck.sources.append((args[0], float(args[1])))
        remember(f"vdc {args[0]}")
    elif keyword == "symm":
        deck.symmetric_node = args[0]
        remember("symm")
    elif keyword == "super":
        deck.superconductor = Superconductor(float(args[0]) * EV, float(args[1]))
        remember("super")
    elif keyword == "num":
        value = int(args[1])
        if args[0] == "j":
            deck.declared_junctions = value
        elif args[0] == "ext":
            deck.declared_external = value
        elif args[0] == "nodes":
            deck.declared_nodes = value
        else:
            raise NetlistError(f"unknown 'num' kind {args[0]!r}")
        remember(f"num {args[0]}")
    elif keyword == "temp":
        deck.temperature = float(args[0])
        remember("temp")
    elif keyword == "cotunnel":
        deck.cotunnel = True
        remember("cotunnel")
    elif keyword == "record":
        deck.record = RecordSpec(int(args[0]), int(args[1]), int(args[2]))
        remember("record")
    elif keyword == "jumps":
        deck.jumps = int(args[0])
        deck.runs = int(args[1]) if len(args) > 1 else 1
        remember("jumps")
    elif keyword == "sweep":
        deck.sweep = SweepSpec(args[0], float(args[1]), float(args[2]))
        remember("sweep")
    else:
        raise NetlistError(f"unknown directive {keyword!r}")
