"""Circuit substrate: components, builder, electrostatics, charge state."""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder, build_junction_array, build_set
from repro.circuit.circuit import Circuit, ResolvedJunction
from repro.circuit.devices import (
    build_electron_pump,
    build_electron_trap,
    build_single_electron_box,
    pump_cycle_voltages,
)
from repro.circuit.components import (
    GROUND,
    BackgroundCharge,
    Capacitor,
    NodeKind,
    NodeRef,
    Superconductor,
    TunnelJunction,
    VoltageSource,
)
from repro.circuit.electrostatics import Electrostatics
from repro.circuit.junction_table import JunctionTable
from repro.circuit.state import ChargeState

__all__ = [
    "GROUND",
    "BackgroundCharge",
    "Capacitor",
    "ChargeState",
    "Circuit",
    "CircuitBuilder",
    "Electrostatics",
    "JunctionTable",
    "NodeKind",
    "NodeRef",
    "ResolvedJunction",
    "Superconductor",
    "TunnelJunction",
    "VoltageSource",
    "build_electron_pump",
    "build_electron_trap",
    "build_junction_array",
    "build_set",
    "build_single_electron_box",
    "pump_cycle_voltages",
]
