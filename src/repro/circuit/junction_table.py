"""Vectorised per-junction views used by the Monte Carlo solvers.

The non-adaptive solver recomputes the free-energy change of every
junction in both directions each iteration; doing that with numpy
index arrays instead of Python loops keeps the conventional baseline
honest (it is as fast as a straightforward implementation can be, so
the adaptive speedups reported by the benches are not an artefact of a
deliberately slow baseline).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.electrostatics import Electrostatics
from repro.constants import E_CHARGE
from repro.static import units


class JunctionTable:
    """Struct-of-arrays view of a circuit's junctions.

    Attributes
    ----------
    resistance:
        Normal-state resistance per junction (ohms).
    charging:
        ``K_aa - 2 K_ab + K_bb`` per junction (1/farads); the charging
        self-energy of a single-electron transfer is
        ``e^2/2 * charging``.
    """

    def __init__(self, circuit: Circuit, stat: Electrostatics):
        resolved = circuit.resolved_junctions()
        n = len(resolved)
        self.n_junctions = n
        self.resistance = np.array([rj.resistance for rj in resolved])
        self.capacitance = np.array([rj.capacitance for rj in resolved])
        self.charging = np.array(
            [stat.charging_coefficient(rj.ref_a, rj.ref_b) for rj in resolved]
        )

        a_island = np.array([rj.ref_a.is_island for rj in resolved])
        b_island = np.array([rj.ref_b.is_island for rj in resolved])
        index_a = np.array([rj.ref_a.index for rj in resolved], dtype=np.intp)
        index_b = np.array([rj.ref_b.index for rj in resolved], dtype=np.intp)
        #: public endpoint views used by the adaptive solver's per-junction
        #: potential-change tests
        self.a_is_island = a_island
        self.a_index = index_a
        self.b_is_island = b_island
        self.b_index = index_b
        # positions in the junction array whose endpoint is an island /
        # external node, plus the corresponding gather indices
        self._a_isl_pos = np.flatnonzero(a_island)
        self._a_isl_idx = index_a[a_island]
        self._a_ext_pos = np.flatnonzero(~a_island)
        self._a_ext_idx = index_a[~a_island]
        self._b_isl_pos = np.flatnonzero(b_island)
        self._b_isl_idx = index_b[b_island]
        self._b_ext_pos = np.flatnonzero(~b_island)
        self._b_ext_idx = index_b[~b_island]

    @units("v_islands: V, vext: V -> V")
    def potential_drop(self, v_islands: np.ndarray, vext: np.ndarray) -> np.ndarray:
        """``phi_b - phi_a`` for every junction."""
        phi_a = np.empty(self.n_junctions)
        phi_a[self._a_isl_pos] = v_islands[self._a_isl_idx]
        phi_a[self._a_ext_pos] = vext[self._a_ext_idx]
        phi_b = np.empty(self.n_junctions)
        phi_b[self._b_isl_pos] = v_islands[self._b_isl_idx]
        phi_b[self._b_ext_pos] = vext[self._b_ext_idx]
        return phi_b - phi_a

    @units("v_islands: V, vext: V, dq: C -> J")
    def free_energy_changes(
        self, v_islands: np.ndarray, vext: np.ndarray, dq: float = -E_CHARGE
    ) -> tuple[np.ndarray, np.ndarray]:
        """Forward and backward ``dW`` for every junction.

        *Forward* moves charge ``dq`` from ``node_a`` to ``node_b``;
        *backward* is the reverse.  Both share the charging self-energy
        term, so it is computed once.
        """
        drop = self.potential_drop(v_islands, vext)
        self_energy = 0.5 * dq * dq * self.charging
        dw_forward = dq * drop + self_energy
        dw_backward = -dq * drop + self_energy
        return dw_forward, dw_backward
