"""Circuit component definitions.

A single-electron circuit is a graph of *nodes* connected by tunnel
junctions and ordinary capacitors.  Nodes come in two flavours:

* **islands** — floating conductors whose charge changes only by
  discrete tunnel events (``q = -e * n + q0``);
* **external nodes** — nodes whose potential is pinned by an ideal
  voltage source (including ground, which is the external node ``"0"``).

Components reference nodes by *label* (any hashable, conventionally an
``int`` or ``str``); :class:`~repro.circuit.builder.CircuitBuilder`
resolves labels into dense indices when the circuit is frozen.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Hashable

from repro.errors import CircuitError

#: Label of the ground node.  Ground is always an external node at 0 V.
GROUND: str = "0"


def canonical_label(label: Hashable) -> Hashable:
    """Normalise a node label: integer zero becomes the ground label."""
    if label == 0 or label == "0":
        return GROUND
    return label


class NodeKind(enum.Enum):
    """Discriminates island nodes from externally driven nodes."""

    ISLAND = "island"
    EXTERNAL = "external"


@dataclasses.dataclass(frozen=True)
class NodeRef:
    """Resolved reference to a node: its kind plus a dense index.

    Islands index into the island arrays (charge state, potentials);
    external nodes index into the external-voltage vector.  Ground is
    external index 0 by construction.
    """

    kind: NodeKind
    index: int

    @property
    def is_island(self) -> bool:
        return self.kind is NodeKind.ISLAND


@dataclasses.dataclass(frozen=True)
class TunnelJunction:
    """A tunnel junction between ``node_a`` and ``node_b``.

    The junction behaves electrostatically as a capacitor of value
    ``capacitance`` and supports stochastic electron transfer with the
    normal-state ``resistance`` entering the orthodox rate (Eq. 1 with
    ``I(V) = V/R``).  For superconducting circuits the same resistance
    is the normal-state conductance ``G_nn = 1/R`` of Eq. 3.
    """

    name: str
    node_a: Hashable
    node_b: Hashable
    resistance: float
    capacitance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise CircuitError(
                f"junction {self.name!r}: resistance must be > 0, got {self.resistance}"
            )
        if self.capacitance <= 0.0:
            raise CircuitError(
                f"junction {self.name!r}: capacitance must be > 0, got {self.capacitance}"
            )
        if canonical_label(self.node_a) == canonical_label(self.node_b):
            raise CircuitError(f"junction {self.name!r} connects a node to itself")


@dataclasses.dataclass(frozen=True)
class Capacitor:
    """An ordinary (non-tunneling) capacitor between two nodes."""

    name: str
    node_a: Hashable
    node_b: Hashable
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise CircuitError(
                f"capacitor {self.name!r}: capacitance must be > 0, got {self.capacitance}"
            )
        if canonical_label(self.node_a) == canonical_label(self.node_b):
            raise CircuitError(f"capacitor {self.name!r} connects a node to itself")


@dataclasses.dataclass(frozen=True)
class VoltageSource:
    """An ideal DC voltage source pinning ``node`` to ``voltage`` volts.

    Sources are node-to-ground, matching the ``vdc`` directive of the
    SEMSIM input format.  The driven node becomes an external node.
    """

    name: str
    node: Hashable
    voltage: float

    def __post_init__(self) -> None:
        if canonical_label(self.node) == GROUND:
            raise CircuitError(f"source {self.name!r} may not drive the ground node")


@dataclasses.dataclass(frozen=True)
class BackgroundCharge:
    """A fractional offset charge ``q0 = charge_e * e`` on an island.

    Background charges model stray charge in the substrate (the ``charge``
    directive; Fig. 5 uses ``Qb = 0.65 e``).
    """

    node: Hashable
    charge_e: float

    def __post_init__(self) -> None:
        if canonical_label(self.node) == GROUND:
            raise CircuitError("background charge may not sit on the ground node")


@dataclasses.dataclass(frozen=True)
class Superconductor:
    """Superconducting material parameters shared by a whole circuit.

    ``delta0`` is the zero-temperature gap in joules and ``tc`` the
    critical temperature in kelvin.  The paper's circuits are either
    fully superconducting or fully normal (Sec. III); mixing is rejected
    by the builder.
    """

    delta0: float
    tc: float

    def __post_init__(self) -> None:
        if self.delta0 <= 0.0:
            raise CircuitError(f"superconducting gap must be > 0, got {self.delta0}")
        if self.tc <= 0.0:
            raise CircuitError(f"critical temperature must be > 0, got {self.tc}")
