"""Library of canonical single-electron devices.

Beyond the SET of Fig. 1, the paper's introduction motivates the whole
device family this simulator serves: electron boxes (charge counting),
traps and memory cells [5, 6], and pumps/turnstiles.  Each builder
returns a frozen :class:`~repro.circuit.circuit.Circuit` with
conventional node and source names, ready for the Monte Carlo engine or
the master-equation solver.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.circuit import Circuit
from repro.circuit.components import GROUND, Superconductor
from repro.errors import CircuitError


def build_single_electron_box(
    resistance: float = 1e6,
    junction_capacitance: float = 1e-18,
    gate_capacitance: float = 2e-18,
    gate_voltage: float = 0.0,
    background_charge_e: float = 0.0,
    superconductor: Superconductor | None = None,
) -> Circuit:
    """A single-electron box: one junction, one island, one gate.

    The box has no transport, only charge state: sweeping the gate
    produces the Coulomb staircase — island occupancy jumps by one
    electron each time the induced charge crosses a half-integer.
    """
    builder = CircuitBuilder()
    builder.add_junction("j1", "reservoir", "island", resistance,
                         junction_capacitance)
    builder.add_capacitor("cg", "gate", "island", gate_capacitance)
    builder.add_voltage_source("vres", "reservoir", 0.0)
    builder.add_voltage_source("vg", "gate", gate_voltage)
    if background_charge_e:
        builder.add_background_charge("island", background_charge_e)
    builder.set_superconductor(superconductor)
    return builder.build()


def build_electron_trap(
    n_junctions: int = 3,
    resistance: float = 1e6,
    junction_capacitance: float = 1e-18,
    trap_capacitance: float = 20e-18,
    island_gate_capacitance: float = 0.5e-18,
    gate_voltage: float = 0.0,
    bias_voltage: float = 0.0,
) -> Circuit:
    """A multi-junction electron trap / memory cell [5, 6].

    A chain of small islands separates a reservoir from a large storage
    island.  The chain's charging energy forms a barrier, so the trap
    holds its electron count metastably — write operations need a gate
    pulse that tilts the energy landscape.  Node names: ``res``
    (reservoir lead), ``m1..m{n-1}`` (barrier islands), ``trap``.
    """
    if n_junctions < 2:
        raise CircuitError("a trap needs at least 2 junctions for a barrier")
    builder = CircuitBuilder()
    nodes = ["res"] + [f"m{i}" for i in range(1, n_junctions)] + ["trap"]
    for i in range(n_junctions):
        builder.add_junction(
            f"j{i+1}", nodes[i], nodes[i + 1], resistance, junction_capacitance
        )
    for i in range(1, n_junctions):
        builder.add_capacitor(
            f"cm{i}", GROUND, f"m{i}", island_gate_capacitance
        )
    builder.add_capacitor("ct", "gate", "trap", trap_capacitance)
    builder.add_voltage_source("vres", "res", bias_voltage)
    builder.add_voltage_source("vg", "gate", gate_voltage)
    return builder.build()


def build_electron_pump(
    resistance: float = 1e6,
    junction_capacitance: float = 1e-18,
    gate_capacitance: float = 2e-18,
    bias_voltage: float = 0.0,
) -> Circuit:
    """A three-junction, two-island electron pump.

    Driving the two island gates with phase-shifted signals moves
    exactly one electron per cycle from ``lead_l`` to ``lead_r`` — the
    classic quantised-current experiment.  Gates are the sources
    ``vg1``/``vg2``; the engine's ``set_sources`` steps them through a
    pumping cycle.
    """
    builder = CircuitBuilder()
    builder.add_junction("j1", "lead_l", "isl1", resistance, junction_capacitance)
    builder.add_junction("j2", "isl1", "isl2", resistance, junction_capacitance)
    builder.add_junction("j3", "isl2", "lead_r", resistance, junction_capacitance)
    builder.add_capacitor("cg1", "gate1", "isl1", gate_capacitance)
    builder.add_capacitor("cg2", "gate2", "isl2", gate_capacitance)
    builder.add_voltage_source("vl", "lead_l", +bias_voltage / 2.0)
    builder.add_voltage_source("vr", "lead_r", -bias_voltage / 2.0)
    builder.add_voltage_source("vg1", "gate1", 0.0)
    builder.add_voltage_source("vg2", "gate2", 0.0)
    return builder.build()


def pump_cycle_voltages(
    gate_capacitance: float = 2e-18,
    n_points: int = 12,
    center: tuple[float, float] = (0.4, 0.4),
    radius: float = 0.25,
) -> list[dict[str, float]]:
    """Gate-voltage sequence for one quasi-static pump cycle.

    The two island gate charges trace a circle in the ``(q1, q2)``
    stability plane (units of ``e``).  Quantised pumping requires the
    orbit to encircle exactly one triple point of the double-dot
    honeycomb; the default orbit rings the lower triple point of the
    default pump and moves **one electron per cycle** from the left
    lead to the right one at zero bias (reverse the orbit to reverse
    the current).
    """
    if n_points < 4:
        raise CircuitError("a pump cycle needs at least 4 points")
    import math

    from repro.constants import E_CHARGE

    e_over_cg = E_CHARGE / gate_capacitance
    points = []
    for k in range(n_points):
        phase = 2.0 * math.pi * k / n_points
        q1 = center[0] + radius * math.cos(phase)
        q2 = center[1] + radius * math.sin(phase)
        points.append({"vg1": q1 * e_over_cg, "vg2": q2 * e_over_cg})
    return points
