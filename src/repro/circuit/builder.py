"""Incremental construction of single-electron circuits.

:class:`CircuitBuilder` accumulates components referenced by node
labels, then :meth:`CircuitBuilder.build` resolves labels to dense
indices and returns an immutable :class:`~repro.circuit.circuit.Circuit`.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.circuit.components import (
    GROUND,
    BackgroundCharge,
    Capacitor,
    NodeKind,
    NodeRef,
    Superconductor,
    TunnelJunction,
    VoltageSource,
    canonical_label,
)
from repro.circuit.circuit import Circuit
from repro.errors import CircuitError


class CircuitBuilder:
    """Builds a :class:`~repro.circuit.circuit.Circuit` incrementally.

    Example
    -------
    A symmetric SET (the paper's Fig. 1b device)::

        b = CircuitBuilder()
        b.add_junction("j1", "src", "isl", resistance=1e6, capacitance=1e-18)
        b.add_junction("j2", "drn", "isl", resistance=1e6, capacitance=1e-18)
        b.add_capacitor("cg", "gate", "isl", 3e-18)
        b.add_voltage_source("vs", "src", +0.01)
        b.add_voltage_source("vd", "drn", -0.01)
        b.add_voltage_source("vg", "gate", 0.0)
        circuit = b.build()
    """

    def __init__(self) -> None:
        self._junctions: list[TunnelJunction] = []
        self._capacitors: list[Capacitor] = []
        self._sources: list[VoltageSource] = []
        self._charges: list[BackgroundCharge] = []
        self._superconductor: Superconductor | None = None
        self._names: set[str] = set()

    # ------------------------------------------------------------------
    # component addition
    # ------------------------------------------------------------------
    def _claim_name(self, name: str) -> None:
        if name in self._names:
            raise CircuitError(f"duplicate component name {name!r}")
        self._names.add(name)

    def add_junction(
        self,
        name: str,
        node_a: Hashable,
        node_b: Hashable,
        resistance: float,
        capacitance: float,
    ) -> "CircuitBuilder":
        """Add a tunnel junction; returns ``self`` for chaining."""
        self._claim_name(name)
        self._junctions.append(
            TunnelJunction(name, canonical_label(node_a), canonical_label(node_b),
                           resistance, capacitance)
        )
        return self

    def add_capacitor(
        self, name: str, node_a: Hashable, node_b: Hashable, capacitance: float
    ) -> "CircuitBuilder":
        """Add an ordinary capacitor; returns ``self`` for chaining."""
        self._claim_name(name)
        self._capacitors.append(
            Capacitor(name, canonical_label(node_a), canonical_label(node_b), capacitance)
        )
        return self

    def add_voltage_source(
        self, name: str, node: Hashable, voltage: float
    ) -> "CircuitBuilder":
        """Pin ``node`` to ``voltage`` volts with an ideal source."""
        self._claim_name(name)
        node = canonical_label(node)
        if any(s.node == node for s in self._sources):
            raise CircuitError(f"node {node!r} is already driven by a source")
        self._sources.append(VoltageSource(name, node, voltage))
        return self

    def add_background_charge(self, node: Hashable, charge_e: float) -> "CircuitBuilder":
        """Place a fractional background charge (units of ``e``) on an island."""
        self._charges.append(BackgroundCharge(canonical_label(node), charge_e))
        return self

    def set_superconductor(self, superconductor: Superconductor | None) -> "CircuitBuilder":
        """Declare the whole circuit superconducting (or normal for ``None``)."""
        self._superconductor = superconductor
        return self

    # ------------------------------------------------------------------
    # freezing
    # ------------------------------------------------------------------
    def _collect_labels(self) -> list[Hashable]:
        """Labels of nodes touched by junctions or capacitors.

        Sources deliberately do not contribute: a source must drive a
        node some component actually touches.
        """
        labels: list[Hashable] = []
        seen: set[Hashable] = set()

        def visit(label: Hashable) -> None:
            if label not in seen and label != GROUND:
                seen.add(label)
                labels.append(label)

        for junction in self._junctions:
            visit(junction.node_a)
            visit(junction.node_b)
        for capacitor in self._capacitors:
            visit(capacitor.node_a)
            visit(capacitor.node_b)
        return labels

    def build(self) -> Circuit:
        """Validate and freeze the circuit.

        Raises :class:`~repro.errors.CircuitError` for empty circuits,
        sources on unknown nodes, background charge on non-islands, or
        islands with no capacitive path (singular capacitance matrix).
        """
        if not self._junctions:
            raise CircuitError("circuit has no tunnel junctions")

        labels = self._collect_labels()
        driven = {s.node for s in self._sources}
        for source in self._sources:
            if source.node not in labels:
                raise CircuitError(
                    f"source {source.name!r} drives node {source.node!r}, "
                    "which no component touches"
                )

        island_labels = [lbl for lbl in labels if lbl not in driven]
        # ground occupies external slot 0; sources follow in insertion order
        external_labels = [GROUND] + [s.node for s in self._sources]

        refs: dict[Hashable, NodeRef] = {GROUND: NodeRef(NodeKind.EXTERNAL, 0)}
        for i, lbl in enumerate(island_labels):
            refs[lbl] = NodeRef(NodeKind.ISLAND, i)
        for k, source in enumerate(self._sources):
            refs[source.node] = NodeRef(NodeKind.EXTERNAL, k + 1)

        for charge in self._charges:
            ref = refs.get(charge.node)
            if ref is None:
                raise CircuitError(
                    f"background charge on unknown node {charge.node!r}"
                )
            if not ref.is_island:
                raise CircuitError(
                    f"background charge on node {charge.node!r}, which is "
                    "externally driven (only islands can hold offset charge)"
                )

        return Circuit(
            junctions=tuple(self._junctions),
            capacitors=tuple(self._capacitors),
            sources=tuple(self._sources),
            background_charges=tuple(self._charges),
            island_labels=tuple(island_labels),
            external_labels=tuple(external_labels),
            node_refs=dict(refs),
            superconductor=self._superconductor,
        )


def build_set(
    r1: float = 1e6,
    r2: float = 1e6,
    c1: float = 1e-18,
    c2: float = 1e-18,
    cg: float = 3e-18,
    vs: float = 0.0,
    vd: float = 0.0,
    vg: float = 0.0,
    background_charge_e: float = 0.0,
    superconductor: Superconductor | None = None,
) -> Circuit:
    """Build the canonical single-electron transistor of Fig. 1a.

    Junction 1 connects the source lead to the island, junction 2 the
    drain lead to the island, and ``cg`` couples the gate.  Defaults
    match the paper's Fig. 1b device (1 MOhm, 1 aF, ``Cg = 3`` aF).
    """
    builder = CircuitBuilder()
    builder.add_junction("j1", "source", "island", r1, c1)
    builder.add_junction("j2", "drain", "island", r2, c2)
    builder.add_capacitor("cg", "gate", "island", cg)
    builder.add_voltage_source("vs", "source", vs)
    builder.add_voltage_source("vd", "drain", vd)
    builder.add_voltage_source("vg", "gate", vg)
    if background_charge_e:
        builder.add_background_charge("island", background_charge_e)
    builder.set_superconductor(superconductor)
    return builder.build()


def build_junction_array(
    n_junctions: int,
    resistance: float = 1e6,
    capacitance: float = 1e-18,
    gate_capacitance: float = 0.0,
    bias: float = 0.0,
) -> Circuit:
    """Build a 1-D array of ``n_junctions`` junctions between two leads.

    Arrays are the standard cotunneling testbed: with ``n_junctions >= 2``
    the interior nodes are islands and sequential transport is blockaded
    at low bias, leaving cotunneling as the only channel.
    """
    if n_junctions < 1:
        raise CircuitError("array needs at least one junction")
    builder = CircuitBuilder()
    nodes: list[Hashable] = ["lead_l"]
    nodes += [f"isl{i}" for i in range(1, n_junctions)]
    nodes.append("lead_r")
    for i in range(n_junctions):
        builder.add_junction(f"j{i+1}", nodes[i], nodes[i + 1], resistance, capacitance)
    if gate_capacitance > 0.0:
        for i in range(1, n_junctions):
            builder.add_capacitor(f"cg{i}", GROUND, f"isl{i}", gate_capacitance)
    builder.add_voltage_source("vl", "lead_l", +bias / 2.0)
    builder.add_voltage_source("vr", "lead_r", -bias / 2.0)
    return builder.build()


def chain_labels(prefix: str, count: int) -> Iterable[str]:
    """Yield ``count`` node labels ``prefix0 .. prefix{count-1}``."""
    return (f"{prefix}{i}" for i in range(count))
