"""Immutable circuit representation with resolved node indices."""

from __future__ import annotations

import dataclasses
from typing import Hashable, Mapping

import numpy as np

from repro.circuit.components import (
    BackgroundCharge,
    Capacitor,
    NodeRef,
    Superconductor,
    TunnelJunction,
    VoltageSource,
)
from repro.constants import E_CHARGE
from repro.errors import CircuitError


@dataclasses.dataclass(frozen=True)
class ResolvedJunction:
    """A junction with its endpoints resolved to :class:`NodeRef`."""

    index: int
    junction: TunnelJunction
    ref_a: NodeRef
    ref_b: NodeRef

    @property
    def name(self) -> str:
        return self.junction.name

    @property
    def resistance(self) -> float:
        return self.junction.resistance

    @property
    def capacitance(self) -> float:
        return self.junction.capacitance


@dataclasses.dataclass(frozen=True)
class Circuit:
    """A frozen single-electron circuit.

    Created by :class:`~repro.circuit.builder.CircuitBuilder.build`.
    Node bookkeeping:

    * ``island_labels[i]`` is the label of island ``i``; the simulator's
      charge state is an integer vector over these indices.
    * ``external_labels[k]`` is the label of external node ``k``; slot 0
      is always ground.  ``external_voltages()`` returns the pinned
      potentials in this order.
    """

    junctions: tuple[TunnelJunction, ...]
    capacitors: tuple[Capacitor, ...]
    sources: tuple[VoltageSource, ...]
    background_charges: tuple[BackgroundCharge, ...]
    island_labels: tuple[Hashable, ...]
    external_labels: tuple[Hashable, ...]
    node_refs: Mapping[Hashable, NodeRef]
    superconductor: Superconductor | None = None

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle the declared fields only, never the memo caches.

        The lazily materialised ``*_cache`` slots below are set with
        ``object.__setattr__`` and would otherwise ride along in the
        default dataclass state — making a circuit's pickle bytes
        depend on *which views have been touched so far*.  That breaks
        every consumer that treats the pickle as a content address
        (campaign cell keys, checkpoint run fingerprints) and ships
        redundant derived data to pool workers, who rebuild the caches
        lazily anyway.
        """
        return {
            key: value
            for key, value in self.__dict__.items()
            if not key.endswith("_cache")
        }

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def n_islands(self) -> int:
        return len(self.island_labels)

    @property
    def n_external(self) -> int:
        return len(self.external_labels)

    @property
    def n_junctions(self) -> int:
        return len(self.junctions)

    @property
    def is_superconducting(self) -> bool:
        return self.superconductor is not None

    # ------------------------------------------------------------------
    # resolved views (cached on first use)
    # ------------------------------------------------------------------
    def resolved_junctions(self) -> tuple[ResolvedJunction, ...]:
        """Junctions with endpoints resolved to dense node references."""
        cached = getattr(self, "_resolved_cache", None)
        if cached is None:
            cached = tuple(
                ResolvedJunction(
                    index=i,
                    junction=j,
                    ref_a=self.node_refs[j.node_a],
                    ref_b=self.node_refs[j.node_b],
                )
                for i, j in enumerate(self.junctions)
            )
            object.__setattr__(self, "_resolved_cache", cached)
        return cached

    def island_adjacency(self) -> tuple[tuple[int, ...], ...]:
        """Islands electrostatically coupled to each island.

        Two islands are adjacent when a junction *or a capacitor*
        connects them — both propagate potential perturbations, so
        both must carry the adaptive solver's breadth-first test
        (a gate capacitor couples a logic wire to a device island
        without any junction between them).
        """
        cached = getattr(self, "_island_adjacency_cache", None)
        if cached is None:
            sets: list[set[int]] = [set() for _ in range(self.n_islands)]

            def couple(label_a, label_b) -> None:
                ref_a = self.node_refs[label_a]
                ref_b = self.node_refs[label_b]
                if ref_a.is_island and ref_b.is_island:
                    sets[ref_a.index].add(ref_b.index)
                    sets[ref_b.index].add(ref_a.index)

            for junction in self.junctions:
                couple(junction.node_a, junction.node_b)
            for capacitor in self.capacitors:
                couple(capacitor.node_a, capacitor.node_b)
            cached = tuple(tuple(sorted(s)) for s in sets)
            object.__setattr__(self, "_island_adjacency_cache", cached)
        return cached

    def junction_neighbors(self) -> tuple[tuple[int, ...], ...]:
        """``neighbors[i]``: junctions whose rates can shift when
        junction ``i``'s surroundings change.

        This is the adjacency the adaptive solver's breadth-first test
        walks (Algorithm 1, line 8): junctions touching the same island
        or an island one capacitive hop away.  Junctions only coupled
        through external nodes are *not* neighbours: a pinned node's
        potential never changes, so no perturbation propagates through
        it.
        """
        cached = getattr(self, "_neighbors_cache", None)
        if cached is None:
            on_island = self.junctions_on_island()
            adjacency = self.island_adjacency()
            neighbor_sets: list[set[int]] = [set() for _ in self.junctions]
            for rj in self.resolved_junctions():
                islands: set[int] = set()
                for ref in (rj.ref_a, rj.ref_b):
                    if ref.is_island:
                        islands.add(ref.index)
                        islands.update(adjacency[ref.index])
                for island in islands:
                    for j in on_island[island]:
                        if j != rj.index:
                            neighbor_sets[rj.index].add(j)
            cached = tuple(tuple(sorted(s)) for s in neighbor_sets)
            object.__setattr__(self, "_neighbors_cache", cached)
        return cached

    def junctions_on_island(self) -> tuple[tuple[int, ...], ...]:
        """``result[i]`` lists junction indices touching island ``i``."""
        cached = getattr(self, "_island_junctions_cache", None)
        if cached is None:
            lists: list[list[int]] = [[] for _ in range(self.n_islands)]
            for rj in self.resolved_junctions():
                for ref in (rj.ref_a, rj.ref_b):
                    if ref.is_island:
                        lists[ref.index].append(rj.index)
            cached = tuple(tuple(sorted(set(lst))) for lst in lists)
            object.__setattr__(self, "_island_junctions_cache", cached)
        return cached

    # ------------------------------------------------------------------
    # vectors
    # ------------------------------------------------------------------
    def external_voltages(self) -> np.ndarray:
        """Pinned potentials of external nodes (slot 0 = ground = 0 V)."""
        v = np.zeros(self.n_external)
        for k, source in enumerate(self.sources):
            v[k + 1] = source.voltage
        return v

    def with_source_voltages(self, voltages: Mapping[str, float]) -> "Circuit":
        """Return a copy with named sources set to new DC values.

        Sweeps use this to retarget bias/gate sources without rebuilding
        matrices (the capacitance network is unchanged).
        """
        by_name = {s.name: s for s in self.sources}
        unknown = set(voltages) - set(by_name)
        if unknown:
            raise CircuitError(f"unknown source(s): {sorted(unknown)}")
        new_sources = tuple(
            dataclasses.replace(s, voltage=voltages.get(s.name, s.voltage))
            for s in self.sources
        )
        return dataclasses.replace(self, sources=new_sources)

    def background_charge_vector(self) -> np.ndarray:
        """Offset charge ``q0`` per island in coulombs."""
        q0 = np.zeros(self.n_islands)
        for bc in self.background_charges:
            ref = self.node_refs[bc.node]
            q0[ref.index] += bc.charge_e * E_CHARGE
        return q0

    def source_index(self, name: str) -> int:
        """External-vector index of the source called ``name``."""
        for k, source in enumerate(self.sources):
            if source.name == name:
                return k + 1
        raise CircuitError(f"no source named {name!r}")

    def junction_index(self, name: str) -> int:
        """Index of the junction called ``name``."""
        for i, junction in enumerate(self.junctions):
            if junction.name == name:
                return i
        raise CircuitError(f"no junction named {name!r}")

    def island_index(self, label: Hashable) -> int:
        """Island index for a node label (raises if not an island)."""
        ref = self.node_refs.get(label)
        if ref is None:
            raise CircuitError(f"unknown node {label!r}")
        if not ref.is_island:
            raise CircuitError(f"node {label!r} is externally driven, not an island")
        return ref.index
