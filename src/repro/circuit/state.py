"""Discrete charge state of a circuit."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuit.components import NodeRef
from repro.errors import CircuitError
from repro.static import array_contract


@array_contract(out="(n_islands,) int64")
def neutral_occupation(n_islands: int) -> np.ndarray:
    """All-zero occupation vector for ``n_islands`` islands.

    The canonical occupation dtype is ``int64``: every solver and the
    master-equation state space key on exact integer electron counts,
    so the kernel contract pins the dtype at the single point where
    occupation arrays are born.
    """
    return np.zeros(n_islands, dtype=np.int64)


@dataclasses.dataclass
class ChargeState:
    """Integer electron occupation of every island.

    ``occupation[i]`` is the number of *excess electrons* on island
    ``i``; island charge is ``q_i = -e * occupation[i] + q0_i``.
    Tunnel events change occupations by whole electrons (or by two for
    Cooper pairs); only the electrostatics deals in coulombs.
    """

    occupation: np.ndarray

    @classmethod
    def neutral(cls, n_islands: int) -> "ChargeState":
        """All-islands-neutral initial state."""
        return cls(neutral_occupation(n_islands))

    def copy(self) -> "ChargeState":
        return ChargeState(self.occupation.copy())

    def apply_transfer(
        self, ref_a: NodeRef, ref_b: NodeRef, n_electrons: int = 1
    ) -> None:
        """Move ``n_electrons`` from node ``a`` to node ``b`` in place.

        Lead endpoints are charge reservoirs and carry no state.
        """
        if n_electrons < 1:
            raise CircuitError(f"transfer must move >= 1 electron, got {n_electrons}")
        if ref_a.is_island:
            self.occupation[ref_a.index] -= n_electrons
        if ref_b.is_island:
            self.occupation[ref_b.index] += n_electrons

    def key(self) -> tuple[int, ...]:
        """Hashable snapshot, used by the master-equation state space."""
        return tuple(int(x) for x in self.occupation)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChargeState):
            return NotImplemented
        return bool(np.array_equal(self.occupation, other.occupation))
