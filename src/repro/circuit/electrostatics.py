"""Electrostatics of single-electron circuits.

Everything the rate equations need from the circuit reduces to linear
algebra on the Maxwell capacitance matrix ``C`` restricted to islands:

* island potentials      ``v = C^-1 (q + C_x V_ext)``         (nodal law)
* free-energy change     Eq. 2 of the paper, generalised to a charge
  ``dq`` moving from node ``a`` to node ``b``::

      dW = dq * (phi_b - phi_a) + dq^2/2 * (K_aa - 2 K_ab + K_bb)

  where ``K = C^-1`` and entries involving externally pinned nodes are
  zero (a lead has no charging self-energy).

Two backends are provided: a dense explicit inverse for small/medium
circuits and a sparse LU factorisation with a lazily populated column
cache for the large logic benchmarks (thousands of islands), where the
dense inverse would be slow to form and memory-hungry.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.circuit.circuit import Circuit
from repro.circuit.components import NodeRef
from repro.constants import E_CHARGE
from repro.errors import CircuitError
from repro.static import array_contract, hot, units

#: Circuits up to this many islands use the dense inverse backend.
DENSE_LIMIT_DEFAULT = 1200


def assemble_capacitance(circuit: Circuit) -> tuple[sp.csc_matrix, sp.csr_matrix]:
    """Assemble the island-restricted Maxwell capacitance matrices.

    Returns ``(C, C_x)``: the ``n_islands x n_islands`` Maxwell matrix
    and the ``n_islands x n_external`` island/lead coupling matrix.
    Shared by :class:`Electrostatics` and the static analyzer in
    :mod:`repro.lint`, which needs the matrices *without* the
    positive-definiteness gate (a lint pass reports singularity as a
    diagnostic instead of raising).
    """
    n = circuit.n_islands
    m = circuit.n_external

    diag = np.zeros(n)
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    xrows: list[int] = []
    xcols: list[int] = []
    xvals: list[float] = []

    def couple(ref_a: NodeRef, ref_b: NodeRef, c: float) -> None:
        for ref in (ref_a, ref_b):
            if ref.is_island:
                diag[ref.index] += c
        if ref_a.is_island and ref_b.is_island:
            rows.extend((ref_a.index, ref_b.index))
            cols.extend((ref_b.index, ref_a.index))
            vals.extend((-c, -c))
        elif ref_a.is_island:
            xrows.append(ref_a.index)
            xcols.append(ref_b.index)
            xvals.append(c)
        elif ref_b.is_island:
            xrows.append(ref_b.index)
            xcols.append(ref_a.index)
            xvals.append(c)

    for rj in circuit.resolved_junctions():
        couple(rj.ref_a, rj.ref_b, rj.capacitance)
    for cap in circuit.capacitors:
        couple(
            circuit.node_refs[cap.node_a],
            circuit.node_refs[cap.node_b],
            cap.capacitance,
        )

    cmat = sp.coo_matrix(
        (np.concatenate([diag, np.array(vals)]) if vals else diag,
         (np.concatenate([np.arange(n), np.array(rows, dtype=int)]) if rows
          else np.arange(n),
          np.concatenate([np.arange(n), np.array(cols, dtype=int)]) if cols
          else np.arange(n))),
        shape=(n, n),
    ).tocsc()
    cx = sp.coo_matrix(
        (np.array(xvals), (np.array(xrows, dtype=int), np.array(xcols, dtype=int)))
        if xvals
        else (np.zeros(0), (np.zeros(0, dtype=int), np.zeros(0, dtype=int))),
        shape=(n, m),
    ).tocsr()
    return cmat, cx


class Electrostatics:
    """Capacitance-matrix solver for a frozen :class:`Circuit`.

    Parameters
    ----------
    circuit:
        The circuit to analyse.
    dense_limit:
        Island-count threshold above which the sparse backend is used.
    """

    def __init__(self, circuit: Circuit, dense_limit: int = DENSE_LIMIT_DEFAULT):
        self.circuit = circuit
        n = circuit.n_islands
        self._n = n

        if n == 0:
            raise CircuitError(
                "circuit has no islands; every node is pinned by a source, "
                "so there is no charge dynamics to simulate"
            )

        cmat, self._cx = assemble_capacitance(circuit)
        self._cmat = cmat

        self._dense = n <= dense_limit
        if self._dense:
            dense_c = cmat.toarray()
            floating = False
            try:
                # Cholesky doubles as the positive-definiteness check;
                # the condition bound catches islands whose only anchor
                # is float rounding (an exactly floating group gives a
                # numerically tiny pivot instead of a clean failure).
                np.linalg.cholesky(dense_c)
                floating = np.linalg.cond(dense_c) > 1e12
            except np.linalg.LinAlgError:
                floating = True
            if floating:
                raise CircuitError(
                    "capacitance matrix is singular or not positive definite; "
                    "a group of islands has no capacitive path to a fixed "
                    "potential (add a ground/gate capacitor or a source)"
                )
            self._cinv: np.ndarray | None = np.linalg.inv(dense_c)
            self._lu = None
        else:
            try:
                self._lu = spla.splu(cmat)
            except RuntimeError as exc:  # pragma: no cover - splu failure path
                raise CircuitError(
                    "capacitance matrix factorisation failed; check that every "
                    "island group couples to a fixed potential"
                ) from exc
            self._cinv = None
        self._column_cache: dict[int, np.ndarray] = {}
        self._q0 = circuit.background_charge_vector()

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def n_islands(self) -> int:
        return self._n

    @property
    def is_dense(self) -> bool:
        return self._dense

    @property
    def background_charge(self) -> np.ndarray:
        """Offset charge vector ``q0`` (coulombs), one entry per island."""
        return self._q0

    def capacitance_matrix(self) -> np.ndarray:
        """The Maxwell capacitance matrix over islands (dense copy)."""
        return self._cmat.toarray()

    @units("-> 1/F")
    def cinv_column(self, island: int) -> np.ndarray:
        """Column ``island`` of ``C^-1`` (cached in the sparse backend)."""
        if self._cinv is not None:
            return self._cinv[:, island]
        col = self._column_cache.get(island)
        if col is None:
            unit = np.zeros(self._n)
            unit[island] = 1.0
            col = self._lu.solve(unit)
            self._column_cache[island] = col
        return col

    @units("-> 1/F")
    def cinv_entry(self, row: int, col: int) -> float:
        """Single entry of ``C^-1``."""
        if self._cinv is not None:
            return float(self._cinv[row, col])
        return float(self.cinv_column(col)[row])

    # ------------------------------------------------------------------
    # potentials
    # ------------------------------------------------------------------
    @hot
    @units("occupation: 1 -> C")
    @array_contract(occupation="(n_islands,) int64", out="(n_islands,) float64")
    def island_charges(self, occupation: np.ndarray) -> np.ndarray:
        """Total island charge ``q = -e*n + q0`` for integer occupations."""
        return -E_CHARGE * occupation + self._q0

    @units("occupation: 1, vext: V -> V")
    @array_contract(
        occupation="(n_islands,) int64",
        vext="(n_external,) float64",
        out="(n_islands,) float64",
    )
    def potentials(self, occupation: np.ndarray, vext: np.ndarray) -> np.ndarray:
        """Island potentials for the given occupation and source voltages."""
        rhs = self.island_charges(occupation) + self._cx @ vext
        if self._cinv is not None:
            return self._cinv @ rhs
        return self._lu.solve(rhs)

    @units("v_islands: V, vext: V -> V")
    def node_potential(
        self, ref: NodeRef, v_islands: np.ndarray, vext: np.ndarray
    ) -> float:
        """Potential of any node given precomputed island potentials."""
        if ref.is_island:
            return float(v_islands[ref.index])
        return float(vext[ref.index])

    # ------------------------------------------------------------------
    # free energy and updates
    # ------------------------------------------------------------------
    @units("-> 1/F")
    def charging_coefficient(self, ref_a: NodeRef, ref_b: NodeRef) -> float:
        """``K_aa - 2 K_ab + K_bb`` with lead entries taken as zero.

        Multiplying by ``dq^2 / 2`` gives the charging self-energy of a
        transfer between the two nodes (second term of Eq. 2).
        """
        total = 0.0
        if ref_a.is_island:
            total += self.cinv_entry(ref_a.index, ref_a.index)
        if ref_b.is_island:
            total += self.cinv_entry(ref_b.index, ref_b.index)
        if ref_a.is_island and ref_b.is_island:
            total -= 2.0 * self.cinv_entry(ref_a.index, ref_b.index)
        return total

    @units("v_islands: V, vext: V, dq: C -> J")
    @array_contract(
        v_islands="(n_islands,) float64",
        vext="(n_external,) float64",
        out="() float64",
    )
    def free_energy_change(
        self,
        ref_a: NodeRef,
        ref_b: NodeRef,
        v_islands: np.ndarray,
        vext: np.ndarray,
        dq: float = -E_CHARGE,
    ) -> float:
        """Free-energy change ``dW`` for charge ``dq`` moving ``a -> b``.

        With ``dq = -e`` this is exactly Eq. 2 of the paper; ``dq = -2e``
        gives the Cooper-pair version used in the superconducting model.
        """
        phi_a = self.node_potential(ref_a, v_islands, vext)
        phi_b = self.node_potential(ref_b, v_islands, vext)
        return dq * (phi_b - phi_a) + 0.5 * dq * dq * self.charging_coefficient(
            ref_a, ref_b
        )

    @hot
    @units("dq: C -> V")
    @array_contract(out="(n_islands,) float64")
    def potential_update(
        self, ref_a: NodeRef, ref_b: NodeRef, dq: float = -E_CHARGE
    ) -> np.ndarray:
        """Island potential change caused by moving ``dq`` from ``a`` to ``b``.

        The state-independent identity ``dv = C^-1 dq_vec`` lets solvers
        update potentials incrementally instead of re-solving the full
        system after every tunnel event.
        """
        dv = np.zeros(self._n)
        if ref_a.is_island:
            dv -= dq * self.cinv_column(ref_a.index)
        if ref_b.is_island:
            dv += dq * self.cinv_column(ref_b.index)
        return dv

    @units("dvext: V -> V")
    @array_contract(dvext="(n_external,) float64", out="(n_islands,) float64")
    def source_potential_update(self, dvext: np.ndarray) -> np.ndarray:
        """Island potential change caused by a source-voltage change.

        ``dv = C^-1 C_x dV_ext`` — used when logic stimuli or sweep
        points retarget the sources without touching island charges.
        """
        rhs = self._cx @ dvext
        if self._cinv is not None:
            return self._cinv @ rhs
        return self._lu.solve(rhs)

    # ------------------------------------------------------------------
    # total energy (used by tests and the master-equation solver)
    # ------------------------------------------------------------------
    @units("occupation: 1, vext: V -> J")
    def total_free_energy(self, occupation: np.ndarray, vext: np.ndarray) -> float:
        """Island free energy of a charge configuration, up to a
        state-independent constant.

        For fixed source voltages this is ``F = 1/2 q'^T C^-1 q'`` with
        ``q' = q + C_x V_ext``.  For an event moving ``dq`` from node
        ``a`` to node ``b``, :meth:`free_energy_change` equals the change
        in this quantity **plus** the source work ``dq * V_lead`` for
        each endpoint that is a lead (charge delivered directly to a
        pinned node exchanges energy with its source).  The tests verify
        this bookkeeping identity exactly.
        """
        qeff = self.island_charges(occupation) + self._cx @ vext
        if self._cinv is not None:
            v = self._cinv @ qeff
        else:
            v = self._lu.solve(qeff)
        return 0.5 * float(qeff @ v)
