"""Monte Carlo core: solvers, engine, recording, sweeps."""

from __future__ import annotations

from repro.core.adaptive import AdaptiveSolver
from repro.core.base import BaseSolver, SolverStats
from repro.core.config import SimulationConfig
from repro.core.engine import MonteCarloEngine, RunResult
from repro.core.event_solver import choose_event, draw_time
from repro.core.events import EventKind, TunnelEvent
from repro.core.nonadaptive import NonAdaptiveSolver
from repro.core.recording import (
    CurrentRecorder,
    EventLogRecorder,
    NodeVoltageRecorder,
    Recorder,
)
from repro.core.sweep import (
    CurrentMap,
    IVCurve,
    sweep_iv,
    sweep_map,
    sweep_master_iv,
    symmetric_bias,
)
from repro.core.waveform import (
    Constant,
    DriveResult,
    PiecewiseLinear,
    Sine,
    Square,
    Waveform,
    run_with_waveforms,
)

__all__ = [
    "AdaptiveSolver",
    "BaseSolver",
    "Constant",
    "CurrentMap",
    "DriveResult",
    "PiecewiseLinear",
    "Sine",
    "Square",
    "Waveform",
    "run_with_waveforms",
    "CurrentRecorder",
    "EventKind",
    "EventLogRecorder",
    "IVCurve",
    "MonteCarloEngine",
    "NodeVoltageRecorder",
    "NonAdaptiveSolver",
    "Recorder",
    "RunResult",
    "SimulationConfig",
    "SolverStats",
    "TunnelEvent",
    "choose_event",
    "draw_time",
    "sweep_iv",
    "sweep_map",
    "sweep_master_iv",
    "symmetric_bias",
]
