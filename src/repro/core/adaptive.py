"""The adaptive Monte Carlo solver (Algorithm 1 — the paper's
contribution).

After a tunnel event only the junctions whose electrostatic environment
changed appreciably have their rates recomputed:

1. the potential change ``dv`` caused by the event is known in closed
   form (``C^-1`` columns), so island potentials stay *exact*;
2. starting from the junctions nearest the event, each tested junction
   ``i`` accumulates the potential change across it into a testing
   factor ``b(i) = b0(i) + dP_n1 - dP_n2``;
3. if ``e*|b(i)|`` exceeds ``lambda`` times the magnitude of either
   reference free-energy change stored when the junction's rate was
   last computed — additionally capped at ``lambda * cap * kT``, which
   bounds the *log-rate* staleness of thermally activated junctions
   (see :class:`~repro.core.config.SimulationConfig`) — the junction is
   flagged for recalculation and its neighbours are tested too
   (breadth-first), otherwise the accumulated factor is kept for next
   time;
4. every ``full_refresh_interval`` events all rates are recomputed,
   bounding the cumulative error.

Secondary channels (cotunneling, Cooper pairs) are recomputed every
iteration from the exact potentials, exactly as the paper prescribes
("a non-adaptive solver is used to calculate the tunnel rate
information specific to these effects").
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.electrostatics import Electrostatics
from repro.circuit.junction_table import JunctionTable
from repro.constants import E_CHARGE, K_B
from repro.core.base import BaseSolver
from repro.core.config import SimulationConfig
from repro.core.event_solver import draw_time
from repro.core.events import EventKind, TunnelEvent
from repro.core.pairtree import PairRateTree
from repro.physics.orthodox import orthodox_rates_both
from repro.physics.rates import TunnelingModel
from repro.telemetry import registry as _telemetry


class AdaptiveSolver(BaseSolver):
    """Selective-update MC solver (the paper's Algorithm 1)."""

    def __init__(
        self,
        circuit: Circuit,
        electrostatics: Electrostatics,
        junction_table: JunctionTable,
        model: TunnelingModel,
        config: SimulationConfig,
        rng: np.random.Generator,
        initial_occupation: np.ndarray | None = None,
    ):
        super().__init__(
            circuit, electrostatics, junction_table, model, config, rng,
            initial_occupation,
        )
        self._neighbors = circuit.junction_neighbors()
        self._neighbor_arrays = [
            np.asarray(nbrs, dtype=np.intp) for nbrs in self._neighbors
        ]
        self._zero_ext = np.zeros(circuit.n_external)
        # plain-Python endpoint views for the scalar hot path (numpy
        # element access is several times slower than list access)
        self._a_isl_list = junction_table.a_is_island.tolist()
        self._a_idx_list = junction_table.a_index.tolist()
        self._b_isl_list = junction_table.b_is_island.tolist()
        self._b_idx_list = junction_table.b_index.tolist()
        self._resistance_list = junction_table.resistance.tolist()
        self._charging_list = (
            0.5 * E_CHARGE * E_CHARGE * junction_table.charging
        ).tolist()
        # O(log J) sampling tree, usable when the only channels are the
        # sequential pairs (secondary channels are recomputed globally
        # every iteration anyway, so they keep the plain path)
        self._fast = not (
            model.include_cooper_pairs or model.include_cotunneling
        )
        self._tree: PairRateTree | None = None
        # cap on the testing threshold (energy): bounds the log-rate
        # staleness of thermally activated junctions at lambda * cap
        self._energy_cap = (
            config.adaptive_thermal_cap * K_B * model.temperature
            if model.temperature > 0.0
            else float("inf")
        )
        self._a_is_island = junction_table.a_is_island
        self._a_index = junction_table.a_index
        self._b_is_island = junction_table.b_is_island
        self._b_index = junction_table.b_index
        self._b0 = np.zeros(self.n_junctions)
        self._events_since_refresh = 0
        self._v = np.zeros(circuit.n_islands)
        self._dw_fw = np.zeros(self.n_junctions)
        self._dw_bw = np.zeros(self.n_junctions)
        self._seq_fw = np.zeros(self.n_junctions)
        self._seq_bw = np.zeros(self.n_junctions)
        self._full_refresh()

    # ------------------------------------------------------------------
    # cache maintenance
    # ------------------------------------------------------------------
    def _full_refresh(self) -> None:
        """Recompute potentials, free energies and all sequential rates."""
        self._v = self.stat.potentials(self.occupation, self.vext)
        self.stats.potential_solves += 1
        self._dw_fw, self._dw_bw = self.table.free_energy_changes(self._v, self.vext)
        self._seq_fw, self._seq_bw = self.model.sequential_rates(
            self._dw_fw, self._dw_bw
        )
        self.stats.sequential_rate_evaluations += 2 * self.n_junctions
        self.stats.full_refreshes += 1
        self._b0[:] = 0.0
        self._events_since_refresh = 0
        if self._fast:
            if self._tree is None:
                self._tree = PairRateTree(self._seq_fw, self._seq_bw)
            else:
                self._tree.rebuild(self._seq_fw, self._seq_bw)

    def _recompute_junctions(self, indices) -> None:
        """Recompute free energies and rates for flagged junctions only."""
        if (
            not self.model.superconducting
            and isinstance(indices, list)
            and len(indices) <= 64
        ):
            self._recompute_scalar(indices)
            return
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size == 0:
            return
        phi_a = np.where(
            self._a_is_island[idx],
            self._v[np.minimum(self._a_index[idx], len(self._v) - 1)],
            self.vext[np.minimum(self._a_index[idx], len(self.vext) - 1)],
        )
        phi_b = np.where(
            self._b_is_island[idx],
            self._v[np.minimum(self._b_index[idx], len(self._v) - 1)],
            self.vext[np.minimum(self._b_index[idx], len(self.vext) - 1)],
        )
        drop = phi_b - phi_a
        self_energy = 0.5 * E_CHARGE * E_CHARGE * self.table.charging[idx]
        dw_fw = -E_CHARGE * drop + self_energy
        dw_bw = +E_CHARGE * drop + self_energy
        self._dw_fw[idx] = dw_fw
        self._dw_bw[idx] = dw_bw
        if not self.model.superconducting:
            fw, bw = orthodox_rates_both(
                dw_fw, dw_bw, self.table.resistance[idx], self.model.temperature
            )
            self._seq_fw[idx] = fw
            self._seq_bw[idx] = bw
        else:
            for pos, j in enumerate(idx):
                j = int(j)
                self._seq_fw[j] = self.model.sequential_rate_single(j, dw_fw[pos])
                self._seq_bw[j] = self.model.sequential_rate_single(j, dw_bw[pos])
        self._b0[idx] = 0.0
        if self._tree is not None:
            fw_arr, bw_arr = self._seq_fw, self._seq_bw
            update = self._tree.update
            for j in idx:
                j = int(j)
                update(j, fw_arr[j] + bw_arr[j])
        self.stats.sequential_rate_evaluations += 2 * idx.size
        self.stats.flagged_recalculations += idx.size

    def _recompute_scalar(self, indices: list) -> None:
        """Scalar-math recompute for the few junctions a tunnel event
        flags (normal-state circuits); avoids numpy's small-array
        overhead in the hot path."""
        kt = K_B * self.model.temperature
        e = E_CHARGE
        v = self._v
        vext = self.vext
        a_isl, a_idx = self._a_isl_list, self._a_idx_list
        b_isl, b_idx = self._b_isl_list, self._b_idx_list
        charging = self._charging_list
        resistance = self._resistance_list
        fw_arr, bw_arr = self._seq_fw, self._seq_bw
        dwf_arr, dwb_arr = self._dw_fw, self._dw_bw
        tree = self._tree
        e2 = e * e

        for i in indices:
            phi_a = v[a_idx[i]] if a_isl[i] else vext[a_idx[i]]
            phi_b = v[b_idx[i]] if b_isl[i] else vext[b_idx[i]]
            drop = phi_b - phi_a
            self_energy = charging[i]
            dwf = -e * drop + self_energy
            dwb = +e * drop + self_energy
            denominator = e2 * resistance[i]
            if kt > 0.0:
                x = dwf / kt
                if x > 500.0:
                    fw = 0.0
                elif -1e-12 < x < 1e-12:
                    fw = kt / denominator
                else:
                    fw = dwf / math.expm1(x) / denominator
                x = dwb / kt
                if x > 500.0:
                    bw = 0.0
                elif -1e-12 < x < 1e-12:
                    bw = kt / denominator
                else:
                    bw = dwb / math.expm1(x) / denominator
            else:
                fw = -dwf / denominator if dwf < 0.0 else 0.0
                bw = -dwb / denominator if dwb < 0.0 else 0.0
            dwf_arr[i] = dwf
            dwb_arr[i] = dwb
            fw_arr[i] = fw
            bw_arr[i] = bw
            self._b0[i] = 0.0
            if tree is not None:
                tree.update(i, fw + bw)
        self.stats.sequential_rate_evaluations += 2 * len(indices)
        self.stats.flagged_recalculations += len(indices)

    def _frontier_potential_change(
        self, frontier: np.ndarray, dv: np.ndarray, dvext: np.ndarray
    ) -> np.ndarray:
        """Change of ``phi_b - phi_a`` across each frontier junction."""
        b_isl = self._b_is_island[frontier]
        a_isl = self._a_is_island[frontier]
        b_idx = self._b_index[frontier]
        a_idx = self._a_index[frontier]
        change = np.where(
            b_isl, dv[np.minimum(b_idx, len(dv) - 1)],
            dvext[np.minimum(b_idx, len(dvext) - 1)],
        )
        change -= np.where(
            a_isl, dv[np.minimum(a_idx, len(dv) - 1)],
            dvext[np.minimum(a_idx, len(dvext) - 1)],
        )
        return change

    def _adaptive_update(
        self, dv: np.ndarray, dvext: np.ndarray | None, seeds
    ) -> None:
        """Algorithm 1: test, flag, and selectively recompute.

        The per-event walk touches a few dozen junctions; a tightly
        bound scalar loop beats vectorisation at that size.  Large
        seed sets (stimulus changes test every junction) take the
        vectorised frontier path instead.
        """
        if len(seeds) > 256:
            self._adaptive_update_vector(dv, dvext, seeds)
            return
        lam = self.config.adaptive_threshold
        scale = lam / E_CHARGE
        cap = self._energy_cap
        b0 = self._b0
        dw_fw, dw_bw = self._dw_fw, self._dw_bw
        a_isl, a_idx = self._a_isl_list, self._a_idx_list
        b_isl, b_idx = self._b_isl_list, self._b_idx_list
        neighbors = self._neighbors
        dv_list = dv  # numpy scalar access; dv is dense and small-ish
        ext = dvext
        visited: set[int] = set()
        flagged: list[int] = []
        queue = list(seeds)
        head = 0
        while head < len(queue):
            i = queue[head]
            head += 1
            if i in visited:
                continue
            visited.add(i)
            change = 0.0
            if b_isl[i]:
                change += dv_list[b_idx[i]]
            elif ext is not None:
                change += ext[b_idx[i]]
            if a_isl[i]:
                change -= dv_list[a_idx[i]]
            elif ext is not None:
                change -= ext[a_idx[i]]
            b = b0[i] + change
            fw = dw_fw[i]
            bw = dw_bw[i]
            limit = fw if fw >= 0 else -fw
            other = bw if bw >= 0 else -bw
            if other < limit:
                limit = other
            if cap < limit:
                limit = cap
            if abs(b) >= scale * limit:
                flagged.append(i)
                queue.extend(neighbors[i])
            else:
                b0[i] = b
        if flagged:
            self._recompute_junctions(flagged)

    def _adaptive_update_vector(
        self, dv: np.ndarray, dvext: np.ndarray | None, seeds
    ) -> None:
        """Vectorised variant for wide fronts (source/stimulus changes)."""
        lam = self.config.adaptive_threshold
        if dvext is None:
            dvext = self._zero_ext
        visited = np.zeros(self.n_junctions, dtype=bool)
        flagged_parts: list[np.ndarray] = []
        frontier = np.unique(np.asarray(seeds, dtype=np.intp))
        while frontier.size:
            frontier = frontier[~visited[frontier]]
            if not frontier.size:
                break
            visited[frontier] = True
            b = self._b0[frontier] + self._frontier_potential_change(
                frontier, dv, dvext
            )
            threshold = lam * np.minimum(
                np.minimum(
                    np.abs(self._dw_fw[frontier]),
                    np.abs(self._dw_bw[frontier]),
                ),
                self._energy_cap,
            )
            flag_mask = E_CHARGE * np.abs(b) >= threshold
            flagged = frontier[flag_mask]
            kept = frontier[~flag_mask]
            self._b0[kept] = b[~flag_mask]
            if flagged.size:
                flagged_parts.append(flagged)
                frontier = np.unique(
                    np.concatenate(
                        [self._neighbor_arrays[j] for j in flagged]
                    )
                )
            else:
                break
        if flagged_parts:
            self._recompute_junctions(np.concatenate(flagged_parts))

    # ------------------------------------------------------------------
    # solver interface
    # ------------------------------------------------------------------
    def _step_impl(self, deadline: float | None = None) -> TunnelEvent | None:
        if self._fast:
            event = self._select_fast(deadline)
        else:
            secondary_rates, payloads = self._secondary_rates(self._v)
            event = self._select_and_apply(
                self._seq_fw, self._seq_bw, secondary_rates, payloads,
                self._dw_fw, self._dw_bw, deadline=deadline,
            )
        if event is None:
            return None
        ref_a, ref_b = self._event_endpoints(event)
        dq = -E_CHARGE * event.n_electrons
        dv = self.stat.potential_update(ref_a, ref_b, dq)
        self._v += dv

        self._events_since_refresh += 1
        if self._events_since_refresh >= self.config.full_refresh_interval:
            self._full_refresh()
            return event

        seeds = self._event_seeds(event)
        self._adaptive_update(dv, None, seeds)
        return event

    def _select_fast(self, deadline: float | None = None) -> TunnelEvent | None:
        """Sequential-only event draw through the O(log J) pair tree."""
        tree = self._tree
        total = tree.total
        if deadline is not None and total <= 0.0:
            self._advance_time(deadline - self.time)
            return None
        dt = draw_time(total, self.rng)
        if deadline is not None and self.time + dt > deadline:
            self._advance_time(deadline - self.time)
            return None
        target = self.rng.random() * total
        j, residual = tree.sample(target)
        if residual < self._seq_fw[j]:
            event = TunnelEvent(
                EventKind.SEQUENTIAL, j, +1, 1, float(self._dw_fw[j])
            )
        else:
            event = TunnelEvent(
                EventKind.SEQUENTIAL, j, -1, 1, float(self._dw_bw[j])
            )
        self._commit_event(event, dt)
        return event

    def _event_seeds(self, event: TunnelEvent) -> list[int]:
        """Junctions nearest the tunnel event: the event junction(s)
        themselves plus their immediate neighbours (Fig. 4)."""
        if event.path is not None:
            starts = [event.path.junction_in, event.path.junction_out]
        else:
            starts = [event.junction]
        seeds = list(starts)
        for j in starts:
            seeds.extend(self._neighbors[j])
        return seeds

    def _trace_extras(self) -> dict:
        """Adaptive error proxy: the largest accumulated testing factor
        ``|b(i)|`` (converted to joules via ``e``), i.e. how much
        un-recomputed potential drift the rate caches currently carry.
        Only evaluated while a trace is being recorded."""
        if not self.n_junctions:
            return {"b_error": 0.0}
        return {"b_error": float(E_CHARGE * np.max(np.abs(self._b0)))}

    def set_external_voltages(self, vext: np.ndarray) -> None:
        """React to a stimulus/sweep change of the source voltages.

        The island potential response is exact (``dv = C^-1 C_x dV``).
        Every junction is *tested* against its accumulated threshold —
        an input can perturb junctions it only touches capacitively
        (logic inputs drive gate capacitors, not junctions), so seeding
        from junction-connected nodes alone would leave stale rates
        behind.  Testing is the cheap part of Algorithm 1; only the
        junctions that fail the test are recomputed.
        """
        vext = np.asarray(vext, dtype=float)
        dvext = vext - self.vext
        if not np.any(dvext):
            return
        dv = self.stat.source_potential_update(dvext)
        self._v += dv
        self.vext = vext.copy()
        reg = _telemetry.ACTIVE
        flagged_before = self.stats.flagged_recalculations
        self._adaptive_update(dv, dvext, list(range(self.n_junctions)))
        if reg is not None:
            reg.counter("solver.retargets").add()
            if reg.trace:
                reg.instant(
                    "solver.retarget", category="solver",
                    flagged=self.stats.flagged_recalculations - flagged_before,
                )

    def potentials(self) -> np.ndarray:
        return self._v
