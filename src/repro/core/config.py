"""Simulation configuration."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import SimulationError

#: Default adaptive threshold (the paper's lambda).
DEFAULT_THRESHOLD = 0.05
#: Default period (in tunnel events) of the full rate refresh that
#: bounds the adaptive solver's accumulated error.
DEFAULT_REFRESH_INTERVAL = 1000


@dataclasses.dataclass
class SimulationConfig:
    """All knobs of a Monte Carlo run.

    Attributes
    ----------
    temperature:
        Bath temperature in kelvin.
    solver:
        ``"adaptive"`` (the paper's contribution) or ``"nonadaptive"``
        (the conventional MC baseline).
    adaptive_threshold:
        The paper's ``lambda``: a junction's rate is recomputed when its
        accumulated potential perturbation (times ``e``) exceeds
        ``lambda`` times the smaller of its reference free-energy
        changes.  Smaller is more accurate and slower; 0 recomputes
        everything flagged by any perturbation.
    adaptive_thermal_cap:
        Additional cap on the testing threshold in units of
        ``k_B T``: a junction is also recomputed once its accumulated
        perturbation exceeds ``lambda * cap * k_B T``.  Near-threshold
        (thermally activated) rates depend *exponentially* on the free
        energy, so the paper's pure ``lambda * |dW|`` criterion lets
        their logarithm drift by ``lambda * |dW| / k_B T`` — enormous
        deep in blockade; the cap bounds the log-rate staleness at
        ``lambda * cap``.  Set to ``inf`` to recover the paper's
        criterion exactly.
    full_refresh_interval:
        Every this many tunnel events all rates are recomputed from
        scratch, bounding the cumulative approximation error
        (Sec. III-B).
    include_cotunneling:
        Enable second-order inelastic cotunneling (normal circuits).
    include_cooper_pairs:
        ``None`` enables 2e events automatically for superconducting
        circuits; booleans force the choice.
    cooper_linewidth, cotunneling_energy_floor:
        Optional physics overrides, in joules (see
        :class:`repro.physics.TunnelingModel`).
    qp_table_points:
        Resolution of quasi-particle rate tables.
    seed:
        Seed for the ``numpy.random.Generator`` driving the run: a
        non-negative integer, or a ``numpy.random.SeedSequence`` (the
        parallel sweep layer passes spawned children here so every
        shard draws an independent, reproducible stream).  An integer
        seed ``s`` and ``SeedSequence(s)`` produce bit-identical runs.
    event_hash:
        Maintain an order-sensitive BLAKE2 digest of the realised
        tunnel-event stream (kind, junction, direction, electron
        count, endpoint islands, exact ``dt`` bits) on every solver.
        This is the runtime determinism sanitizer's oracle
        (``repro run --dsan``, :mod:`repro.dsan.runtime`): two runs
        with the same seed must produce the same digest, and shard
        digests fold in shard order so the combined hash is identical
        for every ``jobs`` value.  Off by default; the hot-path cost
        when enabled is one small hash update per event.
    """

    temperature: float = 4.2
    solver: str = "adaptive"
    adaptive_threshold: float = DEFAULT_THRESHOLD
    adaptive_thermal_cap: float = 4.0
    full_refresh_interval: int = DEFAULT_REFRESH_INTERVAL
    include_cotunneling: bool = False
    include_cooper_pairs: bool | None = None
    cooper_linewidth: float | None = None
    cotunneling_energy_floor: float | None = None
    qp_table_points: int = 4001
    seed: int | np.random.SeedSequence = 0
    event_hash: bool = False

    def seed_sequence(self) -> np.random.SeedSequence:
        """The seed as a ``SeedSequence`` root for spawning shard seeds."""
        if isinstance(self.seed, np.random.SeedSequence):
            return self.seed
        return np.random.SeedSequence(self.seed)

    def __post_init__(self) -> None:
        if self.temperature < 0.0:
            raise SimulationError(f"temperature must be >= 0, got {self.temperature}")
        if self.solver not in ("adaptive", "nonadaptive"):
            raise SimulationError(
                f"solver must be 'adaptive' or 'nonadaptive', got {self.solver!r}"
            )
        if self.adaptive_threshold < 0.0:
            raise SimulationError(
                f"adaptive_threshold must be >= 0, got {self.adaptive_threshold}"
            )
        if self.adaptive_thermal_cap <= 0.0:
            raise SimulationError(
                f"adaptive_thermal_cap must be > 0, got {self.adaptive_thermal_cap}"
            )
        if self.full_refresh_interval < 1:
            raise SimulationError(
                f"full_refresh_interval must be >= 1, got {self.full_refresh_interval}"
            )
        if isinstance(self.seed, (int, np.integer)):
            if self.seed < 0:
                raise SimulationError(f"seed must be >= 0, got {self.seed}")
        elif not isinstance(self.seed, np.random.SeedSequence):
            raise SimulationError(
                "seed must be an int or numpy.random.SeedSequence, "
                f"got {type(self.seed).__name__}"
            )

    def replace(self, **kwargs) -> "SimulationConfig":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **kwargs)
