"""Tunnel event descriptions shared by the solvers and recorders."""

from __future__ import annotations

import dataclasses
import enum

from repro.physics.cotunneling import CotunnelingPath


class EventKind(enum.Enum):
    """The three transport channels SEMSIM models."""

    SEQUENTIAL = "sequential"
    COOPER_PAIR = "cooper_pair"
    COTUNNELING = "cotunneling"


@dataclasses.dataclass(frozen=True)
class TunnelEvent:
    """One realised tunnel event.

    ``direction`` is +1 when electrons traverse the junction from its
    ``node_a`` to its ``node_b`` and -1 for the reverse; for
    cotunneling events ``path`` carries the per-junction directions and
    ``junction``/``direction`` describe the *entry* junction.
    ``n_electrons`` is 1 for sequential/cotunneling and 2 for Cooper
    pairs.
    """

    kind: EventKind
    junction: int
    direction: int
    n_electrons: int
    dw: float
    path: CotunnelingPath | None = None

    def flux_contributions(self) -> list[tuple[int, int]]:
        """``(junction, signed electron count)`` pairs for current
        bookkeeping."""
        if self.kind is EventKind.COTUNNELING:
            assert self.path is not None
            return [
                (self.path.junction_in, self.path.direction_in),
                (self.path.junction_out, self.path.direction_out),
            ]
        return [(self.junction, self.direction * self.n_electrons)]
