"""Bias sweeps: I-V curves and two-dimensional current maps.

These drive the paper's device-level experiments: the SET/SSET I-V
curves of Fig. 1 (``sweep`` directive of the input format) and the
(bias, gate) contour map of Fig. 5.

Both sweeps are built as *shard/merge* pipelines: the work is cut into
independent units (gate rows for :func:`sweep_map`, voltage chunks for
:func:`sweep_iv`), each unit carries its own spawned seed, and the
units are executed through :func:`repro.parallel.pool.execute_shards`
— inline for ``jobs=1``, across a process pool for ``jobs>1``.  The
shard layout (and therefore the result) is a function of the problem
alone; ``jobs`` only changes how fast the same numbers appear.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.circuit.circuit import Circuit
from repro.core.base import SolverStats
from repro.core.config import SimulationConfig
from repro.core.engine import MonteCarloEngine
from repro.dsan.runtime import fold_hashes
from repro.errors import FrozenCircuitError, SimulationError
from repro.monitor.ledger import run_scope
from repro.parallel.pool import execute_shards
from repro.parallel.seeds import spawn_seeds
from repro.recovery.checkpoint import CheckpointStore
from repro.recovery.policy import ExecutionPolicy
from repro.telemetry import registry as _telemetry

if TYPE_CHECKING:  # deferred: repro.campaign imports back into core
    from repro.campaign.store import CampaignStore


@dataclasses.dataclass
class IVCurve:
    """One swept I-V characteristic."""

    voltages: np.ndarray
    currents: np.ndarray
    label: str = ""
    #: cumulative solver work behind the curve (``None`` for curves
    #: built outside an engine, e.g. analytical references)
    stats: SolverStats | None = dataclasses.field(
        default=None, compare=False, repr=False
    )
    #: order-sensitive fold of the per-chunk event-stream digests
    #: (``None`` unless the sweep ran with ``event_hash=True``); a pure
    #: function of the shard layout, never of ``jobs``
    event_hash: str | None = dataclasses.field(
        default=None, compare=False, repr=False
    )


@dataclasses.dataclass
class SymmetricBias:
    """Picklable source setter for a symmetric bias: ``+V/2`` / ``-V/2``.

    A plain closure would work serially but cannot cross the process
    boundary of a parallel sweep; a dataclass instance pickles fine.
    """

    source_name: str = "vs"
    drain_name: str = "vd"

    def __call__(self, v: float) -> dict:
        return {self.source_name: +v / 2.0, self.drain_name: -v / 2.0}


def symmetric_bias(
    source_name: str = "vs", drain_name: str = "vd"
) -> Callable[[float], dict]:
    """Source setter for a symmetric bias: ``+V/2`` / ``-V/2``."""
    return SymmetricBias(source_name, drain_name)


# ----------------------------------------------------------------------
# shard work units (module-level and picklable, so a process pool can
# ship them to workers)
# ----------------------------------------------------------------------

@dataclasses.dataclass
class _ShardResult:
    """Currents plus the solver work one shard performed."""

    currents: np.ndarray
    stats: SolverStats
    #: per-shard event-stream digest (``None`` when hashing is off)
    event_hash: str | None = None


@dataclasses.dataclass
class _IVChunk:
    """A contiguous run of sweep points served by one engine.

    The charge state evolves continuously *within* the chunk — exactly
    how a hardware sweep behaves; chunk boundaries restart relaxation
    from scratch with an independent seed.
    """

    index: int
    circuit: Circuit
    config: SimulationConfig
    voltages: np.ndarray
    jumps_per_point: int
    junctions: list[int]
    orientations: list[int] | None
    source_setter: Callable[[float], dict]


def _run_iv_chunk(chunk: _IVChunk) -> _ShardResult:
    """Execute one I-V chunk: the pre-parallel serial loop, verbatim."""
    engine = MonteCarloEngine(chunk.circuit, chunk.config)
    currents = np.empty(len(chunk.voltages))
    with _telemetry.span(
        "sweep.chunk", category="sweep",
        chunk=chunk.index, points=len(chunk.voltages),
    ):
        for i, v in enumerate(chunk.voltages):
            with _telemetry.span("sweep.point", category="sweep", v=float(v)):
                engine.set_sources(chunk.source_setter(float(v)))
                try:
                    currents[i] = engine.measure_current(
                        chunk.junctions, chunk.jumps_per_point,
                        orientations=chunk.orientations,
                    )
                except FrozenCircuitError:
                    # every rate is zero: the circuit is frozen at this
                    # bias (deep blockade at low temperature) and
                    # carries no current.  Any other SimulationError is
                    # a genuine failure and propagates.
                    currents[i] = 0.0
    return _ShardResult(
        currents, dataclasses.replace(engine.solver.stats), engine.event_hash()
    )


@dataclasses.dataclass
class _MapRow:
    """One gate row of a current map: an independent engine sweeping
    the bias at fixed gate voltage."""

    index: int
    circuit: Circuit
    config: SimulationConfig
    gate_voltage: float
    gate_source: str
    bias_voltages: np.ndarray
    jumps_per_point: int
    junctions: list[int]
    orientations: list[int] | None
    bias_setter: Callable[[float], dict]


def _run_map_row(row: _MapRow) -> _ShardResult:
    """Execute one gate row of a current map."""
    engine = MonteCarloEngine(row.circuit, row.config)
    engine.set_sources({row.gate_source: float(row.gate_voltage)})
    currents = np.empty(len(row.bias_voltages))
    with _telemetry.span(
        "sweep.row", category="sweep", vg=float(row.gate_voltage),
    ):
        for bi, vb in enumerate(row.bias_voltages):
            engine.set_sources(row.bias_setter(float(vb)))
            try:
                currents[bi] = engine.measure_current(
                    row.junctions, row.jumps_per_point,
                    orientations=row.orientations,
                )
            except FrozenCircuitError:
                currents[bi] = 0.0
    return _ShardResult(
        currents, dataclasses.replace(engine.solver.stats), engine.event_hash()
    )


def _merge_stats(results: Sequence[_ShardResult]) -> SolverStats:
    """Sum the per-shard work counters in shard order."""
    return SolverStats().merge(*(r.stats for r in results))


def _merge_hashes(results: Sequence[_ShardResult]) -> str | None:
    """Fold the per-shard digests in shard order (``None`` when off)."""
    hashes = [r.event_hash for r in results]
    if any(h is None for h in hashes):
        return None
    return fold_hashes([h for h in hashes if h is not None])


# ----------------------------------------------------------------------
# public sweeps
# ----------------------------------------------------------------------

def sweep_iv(
    circuit: Circuit,
    voltages: Sequence[float],
    config: SimulationConfig | None = None,
    jumps_per_point: int = 4000,
    measure_junctions: Sequence[int] = (0,),
    orientations: Sequence[int] | None = None,
    source_setter: Callable[[float], dict] | None = None,
    label: str = "",
    *,
    chunks: int = 1,
    jobs: int | None = 1,
    checkpoint: CheckpointStore | None = None,
    policy: ExecutionPolicy | None = None,
    campaign: "CampaignStore | str | Path | None" = None,
) -> IVCurve:
    """Sweep a bias and measure the device current at each point.

    Parameters
    ----------
    voltages:
        Sweep values (V).
    source_setter:
        Maps a sweep value to a ``{source_name: voltage}`` dict.  The
        default assumes the :func:`repro.circuit.build_set` convention:
        a symmetric bias splitting ``V`` into ``vs = +V/2`` and
        ``vd = -V/2`` (the ``symm`` directive).  Must be picklable
        (module-level function or callable instance) when the sweep is
        chunked across processes.
    measure_junctions, orientations:
        Junctions whose (orientation-corrected) currents are averaged.
    jumps_per_point:
        Tunnel events per sweep point; 20% are discarded as warm-up.
    chunks:
        Number of contiguous voltage chunks.  One engine serves each
        chunk, so the charge state carries over between the points of
        a chunk — exactly how a hardware sweep behaves and how the
        paper's ``sweep`` directive is implemented.  The default
        (one chunk) is byte-identical to the historical serial sweep;
        more chunks trade that continuity at the seams for parallelism.
        Each chunk beyond the first draws its own spawned seed.
    jobs:
        Worker processes executing the chunks (``None``/``0`` = all
        cores).  For a fixed ``chunks`` the result is bit-identical for
        every ``jobs`` value — only the wall-clock changes.
    checkpoint:
        A :class:`repro.recovery.CheckpointStore`: each completed chunk
        is persisted to its manifest, and a store opened with
        ``resume=True`` replays previously completed chunks.  Because
        chunk seeds are spawned statelessly, the resumed curve is
        bit-identical to an uninterrupted run.
    policy:
        A :class:`repro.recovery.ExecutionPolicy` controlling per-chunk
        retry, timeout and pool-rebuild behaviour.
    campaign:
        A :class:`repro.campaign.CampaignStore` (or its directory
        path): every chunk is first looked up in the durable
        content-addressed store and freshly computed chunks are
        persisted as they land, so re-running the same sweep computes
        nothing and returns bit-identical results.  Forces event-stream
        hashing (the cache's bit-identity oracle).
    """
    if source_setter is None:
        source_setter = symmetric_bias()
    cfg = config if config is not None else SimulationConfig()
    if campaign is not None:
        # force the hash before shard configs are derived, so cached
        # and computed chunks are interchangeable and provably equal
        cfg = cfg.replace(event_hash=True)
    if chunks < 1:
        raise SimulationError(f"chunks must be >= 1, got {chunks}")
    volts = np.asarray(voltages, dtype=float)
    n_chunks = max(1, min(chunks, len(volts)))
    if n_chunks == 1:
        # the historical serial path: the root seed drives the single
        # engine directly, bit-for-bit as before sharding existed
        shard_configs = [cfg]
    else:
        shard_configs = [
            cfg.replace(seed=s) for s in spawn_seeds(cfg.seed, n_chunks)
        ]
    pieces = np.array_split(volts, n_chunks)
    shards = [
        _IVChunk(
            index=i,
            circuit=circuit,
            config=shard_configs[i],
            voltages=pieces[i],
            jumps_per_point=jumps_per_point,
            junctions=list(measure_junctions),
            orientations=list(orientations) if orientations is not None else None,
            source_setter=source_setter,
        )
        for i in range(n_chunks)
    ]
    cache = None
    if campaign is not None:
        from repro.campaign.store import bind_sweep_cache

        cache = bind_sweep_cache(
            campaign, circuit, cfg, kind="sweep_iv",
            values=volts, jumps_per_point=jumps_per_point, label=label,
        )
    with run_scope("sweep_iv") as recorder:
        with _telemetry.span(
            "sweep.iv", category="sweep",
            points=len(volts), label=label, chunks=n_chunks,
        ):
            results = execute_shards(
                _run_iv_chunk, shards, jobs=jobs,
                policy=policy, checkpoint=checkpoint, cache=cache,
            )
        currents = (
            np.concatenate([r.currents for r in results])
            if results else np.empty(0)
        )
        curve = IVCurve(
            volts, currents, label,
            stats=_merge_stats(results),
            event_hash=_merge_hashes(results),
        )
        if recorder is not None:
            recorder.commit(
                circuit=circuit, config=cfg, values=volts,
                jumps_per_point=jumps_per_point, label=label,
                jobs=jobs, chunks=n_chunks,
                stats=curve.stats, event_hash=curve.event_hash,
            )
    return curve


def sweep_master_iv(
    circuit: Circuit,
    voltages: Sequence[float],
    *,
    temperature: float,
    source_setter: Callable[[float], dict] | None = None,
    measure_junctions: Sequence[int] = (0,),
    orientations: Sequence[int] | None = None,
    include_cotunneling: bool = False,
    max_states: int = 4000,
    label: str = "",
) -> IVCurve:
    """Exact master-equation I-V curve over the same sweep layout.

    The deterministic sibling of :func:`sweep_iv`: one
    :class:`~repro.master.solver.MasterEquationSolver` steady-state
    solve per point, with the recorded-junction currents averaged under
    the same ``orientations`` convention as
    :meth:`~repro.core.engine.MonteCarloEngine.measure_current` — so an
    MC curve and a master curve over the same deck are directly
    comparable, point by point.  This is the reference oracle of the
    differential fuzzer (:mod:`repro.gen`).

    There is no seed, no chunking and no event hash: the curve is a
    pure function of the circuit and the sweep values.
    """
    from repro.master.solver import MasterEquationSolver

    if source_setter is None:
        source_setter = symmetric_bias()
    junctions = list(measure_junctions)
    if not junctions:
        raise SimulationError("sweep_master_iv needs at least one junction")
    orient = (
        list(orientations) if orientations is not None else [1] * len(junctions)
    )
    if len(orient) != len(junctions):
        raise SimulationError("orientations must match junctions in length")
    index_of = {s.name: k + 1 for k, s in enumerate(circuit.sources)}
    solver = MasterEquationSolver(
        circuit,
        temperature,
        include_cotunneling=include_cotunneling,
        max_states=max_states,
    )
    volts = np.asarray(voltages, dtype=float)
    currents = np.empty_like(volts)
    with _telemetry.span(
        "sweep.master_iv", category="sweep", points=len(volts), label=label,
    ):
        for i, v in enumerate(volts):
            vext = circuit.external_voltages()
            for name, value in source_setter(float(v)).items():
                if name not in index_of:
                    raise SimulationError(f"unknown source: {name!r}")
                vext[index_of[name]] = value
            result = solver.steady_state(vext)
            currents[i] = float(
                np.mean(
                    [
                        o * result.junction_currents[j]
                        for j, o in zip(junctions, orient)
                    ]
                )
            )
    return IVCurve(volts, currents, label or "master equation")


@dataclasses.dataclass
class CurrentMap:
    """2-D current map over (bias, gate), Fig. 5 style."""

    bias_voltages: np.ndarray
    gate_voltages: np.ndarray
    #: shape (len(gate_voltages), len(bias_voltages))
    currents: np.ndarray
    #: solver work merged across the per-row engines
    stats: SolverStats | None = dataclasses.field(
        default=None, compare=False, repr=False
    )
    #: order-sensitive fold of the per-row event-stream digests
    #: (``None`` unless the map ran with ``event_hash=True``)
    event_hash: str | None = dataclasses.field(
        default=None, compare=False, repr=False
    )


def sweep_map(
    circuit: Circuit,
    bias_voltages: Sequence[float],
    gate_voltages: Sequence[float],
    config: SimulationConfig | None = None,
    jumps_per_point: int = 3000,
    measure_junctions: Sequence[int] = (0,),
    orientations: Sequence[int] | None = None,
    bias_setter: Callable[[float], dict] | None = None,
    gate_source: str = "vg",
    *,
    jobs: int | None = 1,
    checkpoint: CheckpointStore | None = None,
    policy: ExecutionPolicy | None = None,
    campaign: "CampaignStore | str | Path | None" = None,
) -> CurrentMap:
    """Monte Carlo current map over a (bias, gate) grid.

    One engine per gate row; the bias is swept within the row so the
    charge state evolves continuously, as in the measurement the paper
    reproduces from [17].  Every row draws an independent seed spawned
    from ``config.seed`` — rows are decorrelated MC experiments, and
    the map is bit-identical for every ``jobs`` value.  ``checkpoint``
    persists each completed row (resumable via ``resume=True``);
    ``policy`` adds per-row retry/timeout fault tolerance; ``campaign``
    caches completed rows in the durable content-addressed store (and
    forces event hashing), so an identical map re-run computes nothing.
    """
    if not len(bias_voltages) or not len(gate_voltages):
        raise SimulationError("sweep_map needs non-empty grids")
    if bias_setter is None:
        bias_setter = symmetric_bias()
    cfg = config if config is not None else SimulationConfig()
    if campaign is not None:
        cfg = cfg.replace(event_hash=True)
    biases = np.asarray(bias_voltages, dtype=float)
    gates = np.asarray(gate_voltages, dtype=float)
    # independent per-row seeds: with a shared seed every row would
    # replay the identical RNG stream and their MC noise would be
    # perfectly correlated
    row_seeds = spawn_seeds(cfg.seed, len(gates))
    shards = [
        _MapRow(
            index=gi,
            circuit=circuit,
            config=cfg.replace(seed=row_seeds[gi]),
            gate_voltage=float(vg),
            gate_source=gate_source,
            bias_voltages=biases,
            jumps_per_point=jumps_per_point,
            junctions=list(measure_junctions),
            orientations=list(orientations) if orientations is not None else None,
            bias_setter=bias_setter,
        )
        for gi, vg in enumerate(gates)
    ]
    cache = None
    if campaign is not None:
        from repro.campaign.store import bind_sweep_cache

        cache = bind_sweep_cache(
            campaign, circuit, cfg, kind="sweep_map",
            values=np.concatenate([biases, gates]),
            jumps_per_point=jumps_per_point,
        )
    with run_scope("sweep_map") as recorder:
        with _telemetry.span(
            "sweep.map", category="sweep",
            rows=len(gates), points=len(biases),
        ):
            results = execute_shards(
                _run_map_row, shards, jobs=jobs,
                policy=policy, checkpoint=checkpoint, cache=cache,
            )
        currents = np.vstack([r.currents for r in results])
        cmap = CurrentMap(
            biases, gates, currents,
            stats=_merge_stats(results),
            event_hash=_merge_hashes(results),
        )
        if recorder is not None:
            recorder.commit(
                circuit=circuit, config=cfg,
                values=np.concatenate([biases, gates]),
                jumps_per_point=jumps_per_point, jobs=jobs,
                chunks=len(gates),
                stats=cmap.stats, event_hash=cmap.event_hash,
            )
    return cmap
