"""Bias sweeps: I-V curves and two-dimensional current maps.

These drive the paper's device-level experiments: the SET/SSET I-V
curves of Fig. 1 (``sweep`` directive of the input format) and the
(bias, gate) contour map of Fig. 5.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from repro.circuit.circuit import Circuit
from repro.core.base import SolverStats
from repro.core.config import SimulationConfig
from repro.core.engine import MonteCarloEngine
from repro.errors import SimulationError
from repro.telemetry import registry as _telemetry


@dataclasses.dataclass
class IVCurve:
    """One swept I-V characteristic."""

    voltages: np.ndarray
    currents: np.ndarray
    label: str = ""
    #: cumulative solver work behind the curve (``None`` for curves
    #: built outside an engine, e.g. analytical references)
    stats: SolverStats | None = dataclasses.field(
        default=None, compare=False, repr=False
    )


def sweep_iv(
    circuit: Circuit,
    voltages: Sequence[float],
    config: SimulationConfig | None = None,
    jumps_per_point: int = 4000,
    measure_junctions: Sequence[int] = (0,),
    orientations: Sequence[int] | None = None,
    source_setter: Callable[[float], dict] | None = None,
    label: str = "",
) -> IVCurve:
    """Sweep a bias and measure the device current at each point.

    Parameters
    ----------
    voltages:
        Sweep values (V).
    source_setter:
        Maps a sweep value to a ``{source_name: voltage}`` dict.  The
        default assumes the :func:`repro.circuit.build_set` convention:
        a symmetric bias splitting ``V`` into ``vs = +V/2`` and
        ``vd = -V/2`` (the ``symm`` directive).
    measure_junctions, orientations:
        Junctions whose (orientation-corrected) currents are averaged.
    jumps_per_point:
        Tunnel events per sweep point; 20% are discarded as warm-up.

    The engine is reused across points, so the charge state carries
    over — exactly how a hardware sweep behaves and how the paper's
    ``sweep`` directive is implemented.
    """
    if source_setter is None:
        source_setter = symmetric_bias()
    engine = MonteCarloEngine(circuit, config)
    currents = np.empty(len(voltages))
    with _telemetry.span(
        "sweep.iv", category="sweep", points=len(voltages), label=label,
    ):
        for i, v in enumerate(voltages):
            with _telemetry.span("sweep.point", category="sweep", v=float(v)):
                engine.set_sources(source_setter(float(v)))
                try:
                    currents[i] = engine.measure_current(
                        list(measure_junctions), jumps_per_point,
                        orientations=orientations,
                    )
                except SimulationError:
                    # every rate is zero: the circuit is frozen at this
                    # bias (deep blockade at low temperature) and
                    # carries no current
                    currents[i] = 0.0
    return IVCurve(
        np.asarray(voltages, dtype=float), currents, label,
        stats=dataclasses.replace(engine.solver.stats),
    )


def symmetric_bias(
    source_name: str = "vs", drain_name: str = "vd"
) -> Callable[[float], dict]:
    """Source setter for a symmetric bias: ``+V/2`` / ``-V/2``."""

    def setter(v: float) -> dict:
        return {source_name: +v / 2.0, drain_name: -v / 2.0}

    return setter


@dataclasses.dataclass
class CurrentMap:
    """2-D current map over (bias, gate), Fig. 5 style."""

    bias_voltages: np.ndarray
    gate_voltages: np.ndarray
    #: shape (len(gate_voltages), len(bias_voltages))
    currents: np.ndarray
    #: solver work merged across the per-row engines
    stats: SolverStats | None = dataclasses.field(
        default=None, compare=False, repr=False
    )


def sweep_map(
    circuit: Circuit,
    bias_voltages: Sequence[float],
    gate_voltages: Sequence[float],
    config: SimulationConfig | None = None,
    jumps_per_point: int = 3000,
    measure_junctions: Sequence[int] = (0,),
    orientations: Sequence[int] | None = None,
    bias_setter: Callable[[float], dict] | None = None,
    gate_source: str = "vg",
) -> CurrentMap:
    """Monte Carlo current map over a (bias, gate) grid.

    One engine per gate row; the bias is swept within the row so the
    charge state evolves continuously, as in the measurement the paper
    reproduces from [17].
    """
    if not len(bias_voltages) or not len(gate_voltages):
        raise SimulationError("sweep_map needs non-empty grids")
    if bias_setter is None:
        bias_setter = symmetric_bias()
    currents = np.empty((len(gate_voltages), len(bias_voltages)))
    total_stats = SolverStats()
    with _telemetry.span(
        "sweep.map", category="sweep",
        rows=len(gate_voltages), points=len(bias_voltages),
    ):
        for gi, vg in enumerate(gate_voltages):
            engine = MonteCarloEngine(circuit, config)
            engine.set_sources({gate_source: float(vg)})
            with _telemetry.span("sweep.row", category="sweep", vg=float(vg)):
                for bi, vb in enumerate(bias_voltages):
                    engine.set_sources(bias_setter(float(vb)))
                    try:
                        currents[gi, bi] = engine.measure_current(
                            list(measure_junctions), jumps_per_point,
                            orientations=orientations,
                        )
                    except SimulationError:
                        currents[gi, bi] = 0.0
            total_stats = total_stats.merge(engine.solver.stats)
    return CurrentMap(
        np.asarray(bias_voltages, dtype=float),
        np.asarray(gate_voltages, dtype=float),
        currents,
        stats=total_stats,
    )
