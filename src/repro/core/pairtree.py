"""Fenwick (binary-indexed) tree over per-junction rate pairs.

Kinetic Monte Carlo needs two operations per event: the total rate and
a categorical draw.  The conventional solver recomputes every rate
anyway, so an O(J) cumulative sum costs nothing extra; the adaptive
solver touches only a handful of junctions per event, and an O(J)
cumsum would put a floor under its speedup.  This tree keeps the
junction pair-sums ``fw[j] + bw[j]`` in a Fenwick structure: updates
and draws are O(log J), which is what lets the measured Fig. 6 speedup
keep growing with circuit size.
"""

from __future__ import annotations

import numpy as np


class PairRateTree:
    """Sampling tree over ``fw[j] + bw[j]`` junction rate pairs."""

    def __init__(self, fw: np.ndarray, bw: np.ndarray):
        self._n = len(fw)
        self._size = 1
        while self._size < self._n:
            self._size *= 2
        # plain Python floats: scalar index/update is several times
        # faster than numpy element access in the per-event hot path
        self._tree = [0.0] * (2 * self._size)
        self.rebuild(fw, bw)

    # ------------------------------------------------------------------
    def rebuild(self, fw: np.ndarray, bw: np.ndarray) -> None:
        """Recompute the whole tree from fresh rate arrays (O(J))."""
        values = np.zeros(self._size)
        values[: self._n] = fw + bw
        tree = self._tree
        tree[self._size:] = values.tolist()
        for i in range(self._size - 1, 0, -1):
            tree[i] = tree[2 * i] + tree[2 * i + 1]

    def update(self, j: int, pair_rate: float) -> None:
        """Set junction ``j``'s pair rate and repair the path (O(log J))."""
        i = self._size + j
        tree = self._tree
        tree[i] = pair_rate
        i //= 2
        while i:
            tree[i] = tree[2 * i] + tree[2 * i + 1]
            i //= 2

    @property
    def total(self) -> float:
        """Total rate over all junction pairs."""
        return float(self._tree[1])

    def sample(self, target: float) -> tuple[int, float]:
        """Find the junction whose cumulative interval contains
        ``target``; returns ``(junction, residual within its pair)``."""
        i = 1
        tree = self._tree
        while i < self._size:
            left = tree[2 * i]
            if target < left:
                i = 2 * i
            else:
                target -= left
                i = 2 * i + 1
        j = i - self._size
        if j >= self._n:  # numerical edge: walk back into range
            j = self._n - 1
            target = min(target, tree[self._size + j])
        return j, float(target)
