"""Time-varying (AC) source drive.

Algorithm 1 of the paper explicitly covers "AC signal(s) present": each
change of the input potentials re-tests the junctions in contact with
the inputs.  This module supplies the drive itself — waveform objects
plus a runner that advances the Monte Carlo engine under a
piecewise-constant approximation of the signals:

* time is chopped into ``time_step`` intervals;
* sources are held constant within an interval (the solvers' adaptive
  source handling fires at each boundary);
* events drawn beyond a boundary are *discarded* and the clock moved to
  the boundary — exact for exponential residence times (memorylessness)
  and required because the rates change there.  Frozen intervals
  (blockade under the instantaneous drive) simply pass without events.

The step size trades fidelity for cost exactly like a transient
timestep; a few dozen steps per signal period is typically plenty.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Mapping

from repro.core.engine import MonteCarloEngine
from repro.errors import SimulationError


class Waveform:
    """A scalar signal ``value(t)``; ``t`` is relative to drive start."""

    def value(self, t: float) -> float:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class Constant(Waveform):
    """A DC level expressed as a waveform (for mixing with AC drives)."""

    level: float

    def value(self, t: float) -> float:
        return self.level


@dataclasses.dataclass(frozen=True)
class Sine(Waveform):
    """``offset + amplitude * sin(2 pi f t + phase)``."""

    amplitude: float
    frequency: float
    offset: float = 0.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency <= 0.0:
            raise SimulationError(f"frequency must be > 0, got {self.frequency}")

    def value(self, t: float) -> float:
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.frequency * t + self.phase
        )


@dataclasses.dataclass(frozen=True)
class Square(Waveform):
    """Square wave between ``low`` and ``high``."""

    low: float
    high: float
    frequency: float
    duty: float = 0.5
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency <= 0.0:
            raise SimulationError(f"frequency must be > 0, got {self.frequency}")
        if not 0.0 < self.duty < 1.0:
            raise SimulationError(f"duty must be in (0, 1), got {self.duty}")

    def value(self, t: float) -> float:
        cycle = (t * self.frequency + self.phase / (2.0 * math.pi)) % 1.0
        return self.high if cycle < self.duty else self.low


@dataclasses.dataclass(frozen=True)
class PiecewiseLinear(Waveform):
    """Linear interpolation through ``(time, value)`` points; clamped
    outside the table."""

    times: tuple
    values: tuple

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values) or len(self.times) < 2:
            raise SimulationError("need >= 2 matching (time, value) points")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise SimulationError("times must be strictly increasing")

    def value(self, t: float) -> float:
        times, values = self.times, self.values
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        for i in range(len(times) - 1):
            if times[i] <= t <= times[i + 1]:
                frac = (t - times[i]) / (times[i + 1] - times[i])
                return values[i] + frac * (values[i + 1] - values[i])
        raise AssertionError("unreachable")  # pragma: no cover  # repro-lint: allow


@dataclasses.dataclass
class DriveResult:
    """Outcome of an AC drive segment."""

    events: int
    discarded_boundaries: int
    duration: float


def run_with_waveforms(
    engine: MonteCarloEngine,
    waveforms: Mapping[str, Waveform],
    duration: float,
    time_step: float,
) -> DriveResult:
    """Drive named sources with waveforms for ``duration`` seconds.

    Waveform time starts at 0 when the call begins, regardless of the
    engine's absolute clock.
    """
    if duration <= 0.0 or time_step <= 0.0:
        raise SimulationError("duration and time_step must be > 0")
    if not waveforms:
        raise SimulationError("no waveforms given")
    solver = engine.solver
    start = solver.time
    steps = max(1, int(round(duration / time_step)))
    events = 0
    discarded = 0
    for k in range(steps):
        t_rel = k * time_step
        engine.set_sources(
            {name: wf.value(t_rel) for name, wf in waveforms.items()}
        )
        deadline = start + (k + 1) * time_step
        while solver.time < deadline:
            event = solver.step(deadline=deadline)
            if event is None:
                discarded += 1
                break
            events += 1
    return DriveResult(
        events=events, discarded_boundaries=discarded,
        duration=solver.time - start,
    )
