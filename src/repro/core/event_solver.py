"""Kinetic Monte Carlo event selection (Sec. III-B, *Event solver*).

Tunnel events are independent Poisson processes, so the residence time
in the current charge state is exponential with the total rate
(Eq. 5), and the realised event is drawn from the rates treated as a
categorical distribution.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import FrozenCircuitError


def draw_time(total_rate: float, rng: np.random.Generator) -> float:
    """Residence time ``dt = -ln(r) / Gamma_sum`` (Eq. 5)."""
    if total_rate <= 0.0:
        raise FrozenCircuitError(
            "total tunneling rate is zero: the circuit is frozen "
            "(deep Coulomb blockade at this bias/temperature); enable "
            "cotunneling or raise the bias/temperature"
        )
    r = rng.random()
    while r == 0.0:  # pragma: no cover - measure-zero draw
        r = rng.random()
    return -math.log(r) / total_rate


def choose_event(rates: np.ndarray, rng: np.random.Generator) -> int:
    """Draw an event index with probability proportional to its rate."""
    cumulative = np.cumsum(rates)
    total = cumulative[-1]
    if total <= 0.0:
        raise FrozenCircuitError("cannot choose an event: all rates are zero")
    target = rng.random() * total
    index = int(np.searchsorted(cumulative, target, side="right"))
    return min(index, len(rates) - 1)
