"""The Monte Carlo engine orchestrating solvers, recorders and budgets.

This is the public entry point for simulation (Fig. 3's outer loop):
it prepares the electrostatics and rate models once, runs the chosen
solver until a jump or simulated-time budget is exhausted, and exposes
current measurement helpers.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Mapping, Sequence

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.electrostatics import Electrostatics
from repro.circuit.junction_table import JunctionTable
from repro.constants import E_CHARGE
from repro.core.adaptive import AdaptiveSolver
from repro.core.base import BaseSolver, SolverStats
from repro.core.config import SimulationConfig
from repro.core.nonadaptive import NonAdaptiveSolver
from repro.core.recording import Recorder
from repro.errors import SimulationError
from repro.physics.rates import TunnelingModel
from repro.telemetry import registry as _telemetry
from repro.telemetry.clock import Stopwatch


@dataclasses.dataclass
class RunResult:
    """Summary of one :meth:`MonteCarloEngine.run` call."""

    jumps: int
    simulated_time: float
    wall_time: float
    stats: SolverStats
    occupation: np.ndarray


class MonteCarloEngine:
    """Prepares a circuit for Monte Carlo simulation and runs it.

    Parameters
    ----------
    circuit:
        The frozen circuit.
    config:
        Simulation knobs; defaults to :class:`SimulationConfig`'s
        defaults (adaptive solver at 4.2 K).
    initial_occupation:
        Optional starting electron occupation per island.
    """

    def __init__(
        self,
        circuit: Circuit,
        config: SimulationConfig | None = None,
        initial_occupation: np.ndarray | None = None,
    ):
        self.circuit = circuit
        self.config = config if config is not None else SimulationConfig()
        with _telemetry.span(
            "engine.prepare", category="engine",
            junctions=circuit.n_junctions, solver=self.config.solver,
        ):
            self.electrostatics = Electrostatics(circuit)
            self.junction_table = JunctionTable(circuit, self.electrostatics)
            self.model = TunnelingModel(
                circuit,
                self.electrostatics,
                self.junction_table,
                temperature=self.config.temperature,
                include_cotunneling=self.config.include_cotunneling,
                include_cooper_pairs=self.config.include_cooper_pairs,
                cooper_linewidth=self.config.cooper_linewidth,
                cotunneling_energy_floor=self.config.cotunneling_energy_floor,
                qp_table_points=self.config.qp_table_points,
            )
            # accepts an int or a spawned SeedSequence; default_rng(s)
            # and default_rng(SeedSequence(s)) are bit-identical
            self.rng = np.random.default_rng(self.config.seed)
            solver_cls = (
                AdaptiveSolver
                if self.config.solver == "adaptive"
                else NonAdaptiveSolver
            )
            self.solver: BaseSolver = solver_cls(
                circuit,
                self.electrostatics,
                self.junction_table,
                self.model,
                self.config,
                self.rng,
                initial_occupation,
            )
        self.recorders: list[Recorder] = []

    # ------------------------------------------------------------------
    def event_hash(self) -> str | None:
        """Digest of the realised event stream so far.

        ``None`` unless the run was configured with
        ``SimulationConfig(event_hash=True)`` — see the runtime
        determinism sanitizer (:mod:`repro.dsan.runtime`).
        """
        return self.solver.event_stream_hash()

    def add_recorder(self, recorder: Recorder) -> Recorder:
        """Attach a recorder; returns it for convenient chaining."""
        self.recorders.append(recorder)
        return recorder

    def set_sources(self, voltages: Mapping[str, float]) -> None:
        """Retarget named DC sources mid-run (sweeps, logic stimuli)."""
        index_of = {s.name: k + 1 for k, s in enumerate(self.circuit.sources)}
        unknown = set(voltages) - set(index_of)
        if unknown:
            raise SimulationError(f"unknown source(s): {sorted(unknown)}")
        vext = self.solver.vext.copy()
        for name, value in voltages.items():
            vext[index_of[name]] = value
        self.solver.set_external_voltages(vext)

    def run(
        self, max_jumps: int | None = None, max_time: float | None = None
    ) -> RunResult:
        """Simulate until ``max_jumps`` events or ``max_time`` seconds of
        *simulated* time have elapsed (whichever comes first).

        Mirrors the paper's termination criterion ("jumps simulated >
        desired amount? or time simulated > desired amount?").
        """
        if max_jumps is None and max_time is None:
            raise SimulationError("specify max_jumps and/or max_time")
        if max_jumps is not None and max_jumps < 0:
            raise SimulationError(f"max_jumps must be >= 0, got {max_jumps}")
        deadline = self.solver.time + max_time if max_time is not None else None

        for recorder in self.recorders:
            recorder.on_start(self.solver)

        start_jumps = self.solver.stats.events
        jumps = 0
        with _telemetry.span(
            "engine.run", category="engine",
            max_jumps=max_jumps, max_time=max_time,
        ) as run_span:
            watch = Stopwatch()
            while True:
                if max_jumps is not None and jumps >= max_jumps:
                    break
                if deadline is not None and self.solver.time >= deadline:
                    break
                event = self.solver.step()
                jumps += 1
                for recorder in self.recorders:
                    recorder.on_event(self.solver, event)
            wall = watch.elapsed()
            run_span.set("jumps", jumps)
        reg = _telemetry.ACTIVE
        if reg is not None:
            reg.counter("engine.runs").add()
            reg.counter("engine.events").add(jumps)

        return RunResult(
            jumps=self.solver.stats.events - start_jumps,
            simulated_time=self.solver.time,
            wall_time=wall,
            stats=dataclasses.replace(self.solver.stats),
            occupation=self.solver.occupation.copy(),
        )

    # ------------------------------------------------------------------
    def measure_current(
        self,
        junctions: Sequence[int] | int,
        jumps: int,
        warmup_fraction: float = 0.2,
        orientations: Sequence[int] | None = None,
    ) -> float:
        """Mean current through one or more junctions (A).

        Runs ``warmup_fraction * jumps`` events to relax the charge
        state, then measures the net electron flux over the remaining
        events.  Multiple junctions are averaged after applying
        ``orientations`` (each +-1), which lets series junctions with
        opposite ``node_a -> node_b`` senses reinforce instead of
        cancel — the paper's ``record 1 2`` idiom.
        """
        if isinstance(junctions, int):
            junctions = [junctions]
        if not junctions:
            raise SimulationError("measure_current needs at least one junction")
        if orientations is None:
            orientations = [1] * len(junctions)
        if len(orientations) != len(junctions):
            raise SimulationError("orientations must match junctions in length")
        if not 0.0 <= warmup_fraction < 1.0:
            raise SimulationError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        warmup = int(jumps * warmup_fraction)
        if warmup_fraction > 0.0 and warmup == 0:
            # int(jumps * fraction) == 0 would *silently* skip the
            # relaxation run and measure an unrelaxed charge state
            raise SimulationError(
                f"jumps={jumps} is too small to honor "
                f"warmup_fraction={warmup_fraction:g}: the warm-up truncates "
                f"to zero events; use jumps >= "
                f"{math.ceil(1.0 / warmup_fraction)} or pass "
                "warmup_fraction=0 to measure without relaxation"
            )
        with _telemetry.span(
            "engine.measure_current", category="engine",
            jumps=jumps, warmup=warmup,
        ):
            if warmup:
                self.run(max_jumps=warmup)
            flux0 = self.solver.flux[list(junctions)].copy()
            self.solver.reset_window()
            self.run(max_jumps=jumps - warmup)
        elapsed = self.solver.window_elapsed
        if elapsed <= 0.0:
            raise SimulationError("no simulated time elapsed during measurement")
        flux1 = self.solver.flux[list(junctions)]
        currents = -E_CHARGE * (flux1 - flux0) * np.asarray(orientations) / elapsed
        return float(np.mean(currents))
