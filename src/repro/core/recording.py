"""Observation of running simulations.

Recorders subscribe to the engine and sample the solver after events.
They deliberately read only public solver state (time, flux,
potentials), so custom recorders can be written by users without
touching solver internals.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.constants import E_CHARGE
from repro.core.base import BaseSolver
from repro.core.events import TunnelEvent
from repro.errors import SimulationError


class Recorder:
    """Base class; ``on_event`` fires after every realised tunnel event."""

    def on_start(self, solver: BaseSolver) -> None:
        """Called once when the engine starts (or resumes) a run."""

    def on_event(self, solver: BaseSolver, event: TunnelEvent) -> None:
        raise NotImplementedError


@dataclasses.dataclass
class CurrentSample:
    """Windowed current estimate ending at ``time``."""

    time: float
    current: float


class CurrentRecorder(Recorder):
    """Windowed-average current through a junction.

    Every ``interval`` events the net electron flux accumulated since
    the previous sample is converted to a conventional current
    (positive in the junction's ``node_a -> node_b`` direction).
    """

    def __init__(self, junction: int, interval: int = 100):
        if interval < 1:
            raise SimulationError(f"interval must be >= 1, got {interval}")
        self.junction = junction
        self.interval = interval
        self.samples: list[CurrentSample] = []
        self._count = 0
        self._last_flux = 0
        self._last_time = 0.0

    def on_start(self, solver: BaseSolver) -> None:
        self._last_flux = int(solver.flux[self.junction])
        self._last_time = solver.time

    def on_event(self, solver: BaseSolver, event: TunnelEvent) -> None:
        self._count += 1
        if self._count % self.interval:
            return
        elapsed = solver.time - self._last_time
        if elapsed <= 0.0:
            return
        flux = int(solver.flux[self.junction])
        current = -E_CHARGE * (flux - self._last_flux) / elapsed
        self.samples.append(CurrentSample(solver.time, current))
        self._last_flux = flux
        self._last_time = solver.time

    def mean_current(self) -> float:
        """Time-weighted mean of the recorded samples."""
        if not self.samples:
            raise SimulationError("no current samples recorded yet")
        return float(np.mean([s.current for s in self.samples]))


@dataclasses.dataclass
class VoltageSample:
    time: float
    voltage: float


class NodeVoltageRecorder(Recorder):
    """Samples an island's potential every ``interval`` events.

    Logic benches use this on gate-output wire nodes to extract
    propagation delays.
    """

    def __init__(self, island: int, interval: int = 1):
        if interval < 1:
            raise SimulationError(f"interval must be >= 1, got {interval}")
        self.island = island
        self.interval = interval
        self.samples: list[VoltageSample] = []
        self._count = 0

    def on_start(self, solver: BaseSolver) -> None:
        self.samples.append(
            VoltageSample(solver.time, float(solver.potentials()[self.island]))
        )

    def on_event(self, solver: BaseSolver, event: TunnelEvent) -> None:
        self._count += 1
        if self._count % self.interval:
            return
        self.samples.append(
            VoltageSample(solver.time, float(solver.potentials()[self.island]))
        )

    def times(self) -> np.ndarray:
        return np.array([s.time for s in self.samples])

    def voltages(self) -> np.ndarray:
        return np.array([s.voltage for s in self.samples])


@dataclasses.dataclass
class LoggedEvent:
    time: float
    kind: str
    junction: int
    direction: int
    dw: float


class EventLogRecorder(Recorder):
    """Keeps the last ``max_events`` realised events for inspection."""

    def __init__(self, max_events: int = 100000):
        self.max_events = max_events
        self.events: list[LoggedEvent] = []

    def on_event(self, solver: BaseSolver, event: TunnelEvent) -> None:
        if len(self.events) >= self.max_events:
            self.events.pop(0)
        self.events.append(
            LoggedEvent(
                solver.time, event.kind.value, event.junction,
                event.direction, event.dw,
            )
        )
