"""Shared machinery of the adaptive and non-adaptive MC solvers."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.electrostatics import Electrostatics
from repro.circuit.junction_table import JunctionTable
from repro.constants import E_CHARGE
from repro.core.config import SimulationConfig
from repro.core.event_solver import draw_time
from repro.core.events import EventKind, TunnelEvent
from repro.errors import SimulationError
from repro.physics.rates import TunnelingModel
from repro.telemetry import registry as _telemetry


@dataclasses.dataclass
class SolverStats:
    """Work counters used by the performance benches (Fig. 6).

    ``sequential_rate_evaluations`` counts single-electron tunnel-rate
    computations — the quantity the adaptive algorithm exists to reduce;
    ``secondary_rate_evaluations`` counts cotunneling/Cooper-pair rate
    computations, which are always performed non-adaptively (Sec. III-B).
    """

    events: int = 0
    sequential_rate_evaluations: int = 0
    secondary_rate_evaluations: int = 0
    potential_solves: int = 0
    full_refreshes: int = 0
    flagged_recalculations: int = 0

    def as_dict(self) -> dict:
        """The counters as a plain ``{name: value}`` dict."""
        return dataclasses.asdict(self)

    def merge(self, *others: "SolverStats") -> "SolverStats":
        """New :class:`SolverStats` summing these counters and
        ``others``'s — for aggregating runs (sweep rows, repeats)."""
        totals = self.as_dict()
        for other in others:
            for name, value in other.as_dict().items():
                totals[name] += value
        return SolverStats(**totals)

    def format_table(self, title: str = "solver stats") -> str:
        """Fixed-width two-column table of the counters."""
        counters = self.as_dict()
        width = max(len(name) for name in counters)
        lines = [title]
        lines += [
            f"  {name:{width}s}  {value:>14d}"
            for name, value in counters.items()
        ]
        return "\n".join(lines)


class BaseSolver:
    """State and helpers common to both Monte Carlo solvers.

    Subclasses implement :meth:`step` (simulate one tunnel event) and
    :meth:`set_external_voltages` (react to stimulus changes).
    """

    def __init__(
        self,
        circuit: Circuit,
        electrostatics: Electrostatics,
        junction_table: JunctionTable,
        model: TunnelingModel,
        config: SimulationConfig,
        rng: np.random.Generator,
        initial_occupation: np.ndarray | None = None,
    ):
        self.circuit = circuit
        self.stat = electrostatics
        self.table = junction_table
        self.model = model
        self.config = config
        self.rng = rng
        self.resolved = circuit.resolved_junctions()
        self.n_junctions = circuit.n_junctions

        if initial_occupation is None:
            self.occupation = np.zeros(circuit.n_islands, dtype=np.int64)
        else:
            occ = np.asarray(initial_occupation)
            if occ.shape != (circuit.n_islands,):
                raise SimulationError(
                    f"initial occupation must have shape ({circuit.n_islands},), "
                    f"got {occ.shape}"
                )
            self.occupation = occ.astype(np.int64).copy()
        self.vext = circuit.external_voltages()
        self.time = 0.0
        # Kahan compensation for the simulated clock: a sweep can dwell
        # ~1e5 simulated seconds in deep blockade and then resolve
        # ~1e-11 s steps at high bias — naive accumulation would round
        # those steps away and corrupt every windowed current estimate.
        self._time_compensation = 0.0
        # measurement stopwatch: after an astronomically long blockade
        # dwell the absolute clock cannot represent nanosecond windows
        # at all, so windowed estimates accumulate their own elapsed
        # time from zero
        self.window_elapsed = 0.0
        self._window_compensation = 0.0
        #: signed electron count through each junction (+ = node_a -> node_b)
        self.flux = np.zeros(self.n_junctions, dtype=np.int64)
        self.stats = SolverStats()
        # order-sensitive digest of the realised event stream — the
        # runtime determinism sanitizer's oracle (repro run --dsan)
        if config.event_hash:
            from repro.dsan.runtime import new_digest

            self._event_digest = new_digest()
        else:
            self._event_digest = None

    # ------------------------------------------------------------------
    # secondary (always non-adaptive) channels
    # ------------------------------------------------------------------
    def _secondary_rates(self, v: np.ndarray) -> tuple[np.ndarray, list]:
        """Rates and payloads for Cooper-pair and cotunneling events.

        Returns a rate vector plus a parallel list of
        ``(kind, junction_or_path, direction, dw)`` payload tuples.
        """
        rates: list[np.ndarray] = []
        payloads: list = []
        if self.model.include_cooper_pairs:
            dw_fw, dw_bw = self.table.free_energy_changes(
                v, self.vext, dq=-2.0 * E_CHARGE
            )
            cp_fw, cp_bw = self.model.cooper_pair_rates(dw_fw, dw_bw)
            rates.append(cp_fw)
            rates.append(cp_bw)
            payloads.extend(
                (EventKind.COOPER_PAIR, j, +1, dw_fw[j])
                for j in range(self.n_junctions)
            )
            payloads.extend(
                (EventKind.COOPER_PAIR, j, -1, dw_bw[j])
                for j in range(self.n_junctions)
            )
            self.stats.secondary_rate_evaluations += 2 * self.n_junctions
        if self.model.include_cotunneling and self.model.paths:
            cot = np.empty(len(self.model.paths))
            for k, path in enumerate(self.model.paths):
                dw_total = self.stat.free_energy_change(
                    path.ref_a, path.ref_b, v, self.vext
                )
                e1 = self.stat.free_energy_change(
                    path.ref_a, path.ref_m, v, self.vext
                )
                e2 = self.stat.free_energy_change(
                    path.ref_m, path.ref_b, v, self.vext
                )
                cot[k] = self.model.cotunneling_rate_for_path(path, dw_total, e1, e2)
                payloads.append((EventKind.COTUNNELING, path, +1, dw_total))
            rates.append(cot)
            self.stats.secondary_rate_evaluations += len(self.model.paths)
        if rates:
            return np.concatenate(rates), payloads
        return np.zeros(0), payloads

    # ------------------------------------------------------------------
    # event realisation
    # ------------------------------------------------------------------
    def _select_and_apply(
        self,
        seq_fw: np.ndarray,
        seq_bw: np.ndarray,
        secondary_rates: np.ndarray,
        secondary_payloads: list,
        seq_dw_fw: np.ndarray,
        seq_dw_bw: np.ndarray,
        deadline: float | None = None,
    ) -> TunnelEvent | None:
        """Draw the residence time and the event, then mutate the state.

        Selection runs over junction *pairs* first (forward/backward
        resolved inside the chosen pair) and secondary channels after —
        the same ordering the adaptive solver's sampling tree uses, so
        the two solvers walk identical trajectories at a zero adaptive
        threshold.

        With a ``deadline`` (piecewise-constant AC drive), an event
        drawn beyond it is *discarded* and the clock advances to the
        deadline instead — valid because the exponential residence time
        is memoryless, and required because the rates change there.
        """
        pair = seq_fw + seq_bw
        pair_total = float(np.sum(pair))
        secondary_total = float(np.sum(secondary_rates)) if len(
            secondary_rates
        ) else 0.0
        total = pair_total + secondary_total
        if deadline is not None and total <= 0.0:
            # frozen under the current drive: nothing can happen until
            # the sources move again
            self._advance_time(deadline - self.time)
            return None
        dt = draw_time(total, self.rng)
        if deadline is not None and self.time + dt > deadline:
            self._advance_time(deadline - self.time)
            return None
        target = self.rng.random() * total

        if target < pair_total or not secondary_payloads:
            cumulative = np.cumsum(pair)
            j = int(np.searchsorted(cumulative, target, side="right"))
            j = min(j, self.n_junctions - 1)
            residual = target - (cumulative[j - 1] if j else 0.0)
            if residual < seq_fw[j]:
                event = TunnelEvent(
                    EventKind.SEQUENTIAL, j, +1, 1, float(seq_dw_fw[j])
                )
            else:
                event = TunnelEvent(
                    EventKind.SEQUENTIAL, j, -1, 1, float(seq_dw_bw[j])
                )
        else:
            cumulative = np.cumsum(secondary_rates)
            index = int(
                np.searchsorted(cumulative, target - pair_total, side="right")
            )
            index = min(index, len(secondary_payloads) - 1)
            kind, payload, direction, dw = secondary_payloads[index]
            if kind is EventKind.COTUNNELING:
                event = TunnelEvent(
                    kind, payload.junction_in, payload.direction_in, 1,
                    float(dw), path=payload,
                )
            else:
                event = TunnelEvent(kind, payload, direction, 2, float(dw))

        self._commit_event(event, dt)
        return event

    def _commit_event(self, event: TunnelEvent, dt: float) -> None:
        """Realise a drawn event: advance the clocks, count it, mutate
        the charge state and fold it into the event-stream digest.

        Every event-realising path (the shared selection above and the
        adaptive solver's fast tree draw) must commit through here so
        the determinism sanitizer's digest sees the full stream.
        """
        self._advance_time(dt)
        self.stats.events += 1
        self._apply_event(event)
        if self._event_digest is not None:
            self._hash_event(event, dt)

    def _hash_event(self, event: TunnelEvent, dt: float) -> None:
        """Fold one realised event into the stream digest.

        The record covers everything that defines the trajectory step:
        event kind, junction, direction, electron count, the two
        endpoint node refs (= the island occupation deltas) and the
        exact bits of the residence time.  ``float.hex`` keeps the
        encoding exact and platform-independent.
        """
        ref_a, ref_b = self._event_endpoints(event)
        record = (
            f"{event.kind.value}:{event.junction}:{event.direction}:"
            f"{event.n_electrons}:{ref_a.is_island:d}{ref_a.index}:"
            f"{ref_b.is_island:d}{ref_b.index}:{dt.hex()}\n"
        )
        self._event_digest.update(record.encode("ascii"))

    def event_stream_hash(self) -> str | None:
        """Hex digest of the event stream so far (``None`` when
        :attr:`SimulationConfig.event_hash` is off)."""
        if self._event_digest is None:
            return None
        return self._event_digest.hexdigest()

    def _advance_time(self, dt: float) -> None:
        """Kahan-compensated advance of both clocks."""
        y = dt - self._time_compensation
        t = self.time + y
        self._time_compensation = (t - self.time) - y
        self.time = t
        y = dt - self._window_compensation
        t = self.window_elapsed + y
        self._window_compensation = (t - self.window_elapsed) - y
        self.window_elapsed = t

    def reset_window(self) -> None:
        """Restart the measurement stopwatch."""
        self.window_elapsed = 0.0
        self._window_compensation = 0.0

    def _event_endpoints(self, event: TunnelEvent):
        """Source and destination node refs of the net charge transfer."""
        if event.kind is EventKind.COTUNNELING:
            assert event.path is not None
            return event.path.ref_a, event.path.ref_b
        rj = self.resolved[event.junction]
        if event.direction > 0:
            return rj.ref_a, rj.ref_b
        return rj.ref_b, rj.ref_a

    def _apply_event(self, event: TunnelEvent) -> None:
        """Update occupations and junction flux counters."""
        ref_a, ref_b = self._event_endpoints(event)
        if ref_a.is_island:
            self.occupation[ref_a.index] -= event.n_electrons
        if ref_b.is_island:
            self.occupation[ref_b.index] += event.n_electrons
        for junction, electrons in event.flux_contributions():
            self.flux[junction] += electrons

    # ------------------------------------------------------------------
    # interface for subclasses
    # ------------------------------------------------------------------
    def step(self, deadline: float | None = None) -> TunnelEvent | None:
        """Simulate one tunnel event (or advance to ``deadline``).

        Returns ``None`` when a deadline was given and the next event
        would have fallen beyond it — the clock then sits exactly at
        the deadline with no state change.

        The physics lives in :meth:`_step_impl`; this wrapper adds the
        telemetry layer's per-event records.  With telemetry disabled
        (the default) the only cost is one module-attribute load and
        one ``is None`` test.
        """
        reg = _telemetry.ACTIVE
        if reg is None:
            return self._step_impl(deadline)
        return self._step_traced(reg, deadline)

    def _step_traced(
        self, reg: "_telemetry.TelemetryRegistry", deadline: float | None
    ) -> TunnelEvent | None:
        """One step observed by the active registry: metric counters
        always, a per-event trace record when tracing is on."""
        stats = self.stats
        time_before = self.time
        refreshes_before = stats.full_refreshes
        flagged_before = stats.flagged_recalculations
        event = self._step_impl(deadline)
        reg.counter("solver.steps").add()
        dt = self.time - time_before
        if event is None:
            reg.counter("solver.deadline_advances").add()
        else:
            reg.counter("solver.events").add()
            reg.histogram("solver.dt").observe(dt)
        if reg.trace:
            args: dict = {
                "junction": event.junction if event is not None else -1,
                "direction": event.direction if event is not None else 0,
                "kind": event.kind.value if event is not None else "deadline",
                "dt": dt,
                "flagged": stats.flagged_recalculations - flagged_before,
                "refresh": stats.full_refreshes > refreshes_before,
            }
            args.update(self._trace_extras())
            reg.instant("solver.event", category="solver", **args)
        return event

    def _trace_extras(self) -> dict:
        """Solver-specific fields merged into each per-event record."""
        return {}

    def _step_impl(self, deadline: float | None = None) -> TunnelEvent | None:
        """Subclass hook: simulate one tunnel event (see :meth:`step`)."""
        raise NotImplementedError

    def set_external_voltages(self, vext: np.ndarray) -> None:
        raise NotImplementedError

    def potentials(self) -> np.ndarray:
        """Current island potentials (exact)."""
        raise NotImplementedError

    def junction_current(self, junction: int, flux_start: int, time_start: float
                         ) -> float:
        """Mean conventional current (A) through ``junction`` since a
        reference point, positive in the ``node_a -> node_b`` direction.

        Electrons carry charge ``-e``, so the conventional current is
        minus the electron flux rate.
        """
        elapsed = self.time - time_start
        if elapsed <= 0.0:
            raise SimulationError("no simulated time elapsed for current estimate")
        return -E_CHARGE * float(self.flux[junction] - flux_start) / elapsed
