"""The conventional (non-adaptive) Monte Carlo solver.

This is the baseline the paper compares against: after *every* tunnel
event the potential of every node is re-solved and the tunneling rate
of every junction in both directions is recomputed (Sec. III-B,
*Non-adaptive solver*).  It is also the reference for accuracy — the
propagation-delay "truth" of Fig. 7 comes from averaged non-adaptive
runs.

The implementation is vectorised with numpy so that the Fig. 6 speedup
measurements compare the adaptive algorithm against an honest, tuned
baseline rather than a deliberately slow one.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import BaseSolver
from repro.core.events import TunnelEvent


class NonAdaptiveSolver(BaseSolver):
    """Recompute-everything MC solver (conventional algorithm)."""

    def _step_impl(self, deadline: float | None = None) -> TunnelEvent | None:
        v = self.stat.potentials(self.occupation, self.vext)
        self.stats.potential_solves += 1
        dw_fw, dw_bw = self.table.free_energy_changes(v, self.vext)
        seq_fw, seq_bw = self.model.sequential_rates(dw_fw, dw_bw)
        self.stats.sequential_rate_evaluations += 2 * self.n_junctions
        secondary_rates, payloads = self._secondary_rates(v)
        return self._select_and_apply(
            seq_fw, seq_bw, secondary_rates, payloads, dw_fw, dw_bw,
            deadline=deadline,
        )

    def set_external_voltages(self, vext: np.ndarray) -> None:
        """Adopt new source voltages; everything is recomputed next step."""
        self.vext = np.asarray(vext, dtype=float).copy()

    def potentials(self) -> np.ndarray:
        return self.stat.potentials(self.occupation, self.vext)
