"""Parameter-space campaigns over the content-addressed result store.

Modeled on the ns-3 ``sem`` campaign manager: a campaign is one
workload (circuit + physics configuration + measurement protocol)
crossed with an explicit :class:`ParameterSpace` and a replica count.
:meth:`Campaign.run_missing` diffs the requested (parameter point,
replica) grid against the store and schedules *only the missing cells*
onto the resilient :func:`repro.parallel.pool.execute_shards` pool —
inheriting its retry policy, dsan verification and monitor progress —
persisting each freshly computed cell as it lands.  A second identical
run computes nothing; an overlapping grid computes only its new cells.

Three identity layers make the cache sound:

* the **workload fingerprint** (:func:`fingerprint_workload` with the
  campaign's ``extra`` parts) keys the store directory: circuit
  physics, solver, events per point and the measurement protocol —
  *not* the dimension values, so overlapping grids share cells;
* the **cell key** hashes the parameter point, the replica index and
  the cell's spawned seed identity;
* the **cell seed** is spawned at a *content-derived* coordinate
  (:func:`repro.parallel.seeds.spawn_seed_at` with a key hashed from
  the point itself), so the same physical cell draws the same RNG
  stream in every grid that contains it — cached and recomputed cells
  are bit-identical, which the folded dsan event hash can prove.

Results query back as dense numpy arrays (axes = parameter dimensions
in declaration order, then replicas); :meth:`Campaign.to_xarray`
returns a labelled ``xarray.DataArray`` when xarray is installed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.campaign.store import CELL_SCHEMA, CacheSession, CampaignStore
from repro.circuit.circuit import Circuit
from repro.core.base import SolverStats
from repro.core.config import SimulationConfig
from repro.core.engine import MonteCarloEngine
from repro.dsan.runtime import fold_hashes
from repro.errors import CampaignError, FrozenCircuitError
from repro.monitor.ledger import fingerprint_workload, run_scope
from repro.parallel.pool import execute_shards
from repro.parallel.seeds import describe_seed, spawn_seed_at
from repro.recovery.policy import ExecutionPolicy
from repro.telemetry import registry as _telemetry

#: A parameter point: ``((name, value), ...)`` pairs in dimension
#: declaration order — hashable, with a stable repr for content keys.
Point = tuple[tuple[str, float], ...]


class ParameterSpace:
    """An explicit, ordered cartesian grid of named parameter axes."""

    def __init__(self, dims: Mapping[str, Sequence[float]]):
        if not dims:
            raise CampaignError(
                "a parameter space needs at least one dimension"
            )
        self.names: tuple[str, ...] = tuple(str(name) for name in dims)
        if len(set(self.names)) != len(self.names):
            raise CampaignError(
                f"duplicate parameter dimension in {self.names!r}"
            )
        values = []
        for name in self.names:
            axis = np.asarray(dims[name], dtype=float)
            if axis.ndim != 1 or axis.size == 0:
                raise CampaignError(
                    f"dimension {name!r} must be a non-empty 1-D sequence"
                )
            values.append(axis)
        self.values: tuple[np.ndarray, ...] = tuple(values)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(len(axis) for axis in self.values)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    def points(self) -> Iterator[Point]:
        """Every grid point in C (row-major) order."""
        for combo in itertools.product(*self.values):
            yield tuple(
                (name, float(v)) for name, v in zip(self.names, combo)
            )

    def __repr__(self) -> str:
        axes = ", ".join(
            f"{name}[{len(axis)}]"
            for name, axis in zip(self.names, self.values)
        )
        return f"ParameterSpace({axes})"


@dataclasses.dataclass
class PointSources:
    """Picklable default source setter: dimension names *are* source
    names, optionally renamed (e.g. ``{'vg': 'v3'}`` to drive deck node
    3 from a dimension called ``vg``)."""

    rename: dict[str, str] = dataclasses.field(default_factory=dict)

    def __call__(self, point: Mapping[str, float]) -> dict[str, float]:
        return {
            self.rename.get(name, name): float(value)
            for name, value in point.items()
        }


# ----------------------------------------------------------------------
# the cell: one (parameter point, replica) measurement
# ----------------------------------------------------------------------

@dataclasses.dataclass
class CellResult:
    """One cell's measured current plus the solver work behind it."""

    current: float
    stats: SolverStats
    #: the cell's dsan event-stream digest (campaigns always hash)
    event_hash: str | None = None


@dataclasses.dataclass
class CampaignCell:
    """Picklable payload for one campaign cell."""

    index: int
    circuit: Circuit
    config: SimulationConfig
    sources: dict[str, float]
    point: Point
    replica: int
    jumps_per_point: int
    junctions: list[int]
    orientations: list[int] | None


def _run_campaign_cell(cell: CampaignCell) -> CellResult:
    """Execute one cell: set the point's sources, measure the current."""
    engine = MonteCarloEngine(cell.circuit, cell.config)
    with _telemetry.span(
        "campaign.cell", category="campaign",
        cell=cell.index, replica=cell.replica,
    ):
        engine.set_sources(cell.sources)
        try:
            current = engine.measure_current(
                cell.junctions, cell.jumps_per_point,
                orientations=cell.orientations,
            )
        except FrozenCircuitError:
            # deep blockade carries no current; same convention as the
            # sweep shards
            current = 0.0
    return CellResult(
        float(current),
        dataclasses.replace(engine.solver.stats),
        engine.event_hash(),
    )


def _point_spawn_key(point: Point) -> tuple[int, int]:
    """A content-derived spawn-key coordinate for one parameter point.

    Hashing the point (rather than enumerating grid positions) is what
    decouples a cell's RNG stream from the grid it appears in.
    """
    digest = hashlib.blake2b(
        repr(point).encode("utf-8"), digest_size=8
    ).digest()
    return (
        int.from_bytes(digest[:4], "big"),
        int.from_bytes(digest[4:], "big"),
    )


def cell_key(
    point: Point,
    replica: int,
    seed: Any,
    jumps_per_point: int,
) -> str:
    """The content address of one cell inside its workload directory."""
    raw = (
        f"cell|{point!r}|{int(replica)}|{describe_seed(seed)}|"
        f"{int(jumps_per_point)}|{CELL_SCHEMA}"
    )
    return hashlib.blake2b(raw.encode("utf-8"), digest_size=16).hexdigest()


@dataclasses.dataclass
class _FixedKeyCache:
    """A :class:`~repro.parallel.pool.ShardCache` whose cell keys were
    computed up front by the campaign (content keys, not payload
    digests)."""

    session: CacheSession

    def begin(
        self, worker: Callable[..., Any], payloads: list[Any]
    ) -> CacheSession:
        if len(payloads) != len(self.session.keys):
            raise CampaignError(
                f"campaign cache session covers {len(self.session.keys)} "
                f"cell(s) but the batch has {len(payloads)}"
            )
        return self.session


# ----------------------------------------------------------------------
# the campaign manager
# ----------------------------------------------------------------------

@dataclasses.dataclass
class CampaignStatus:
    """How much of a campaign's grid is already in the store."""

    fingerprint: str
    total: int
    present: int

    @property
    def missing(self) -> int:
        return self.total - self.present

    def format(self) -> str:
        return (
            f"workload {self.fingerprint}: {self.present}/{self.total} "
            f"cell(s) in store, {self.missing} missing"
        )


@dataclasses.dataclass
class CampaignRun:
    """Outcome of one :meth:`Campaign.run_missing` call."""

    fingerprint: str
    shape: tuple[int, ...]
    replicas: int
    #: cells served straight from the store
    cached: int
    #: cells actually simulated by this call
    computed: int
    #: axes = parameter dimensions in order, then replicas
    currents: np.ndarray
    stats: SolverStats | None = dataclasses.field(
        default=None, compare=False, repr=False
    )
    #: order-sensitive fold of every cell's event digest — identical
    #: whether the cells were computed or replayed from the store
    event_hash: str | None = dataclasses.field(
        default=None, compare=False, repr=False
    )

    @property
    def total(self) -> int:
        return self.cached + self.computed

    def format(self) -> str:
        return (
            f"campaign {self.fingerprint}: {self.total} cell(s) = "
            f"{self.cached} cached + {self.computed} computed; "
            f"grid {self.shape} x {self.replicas} replica(s)"
        )


class Campaign:
    """One workload crossed with a parameter space and replica count.

    Parameters
    ----------
    circuit, config:
        The device and its physics configuration.  ``config.seed`` is
        the campaign's *root* seed: every cell's seed is spawned from
        it at a content-derived coordinate, so cells are independent MC
        experiments yet bit-reproducible across grids.  Event-stream
        hashing is always forced on — it is the oracle that proves a
        cached cell equals a recomputed one.
    space:
        A :class:`ParameterSpace` (or plain ``{name: values}`` mapping).
    replicas:
        Independent repetitions per parameter point.
    source_setter:
        Maps a ``{dim name: value}`` point to engine source targets;
        defaults to :class:`PointSources` (names map straight through).
        Must be picklable for parallel execution.
    store:
        A :class:`CampaignStore`, a directory path, or ``None`` for the
        default store root.
    """

    def __init__(
        self,
        circuit: Circuit,
        space: ParameterSpace | Mapping[str, Sequence[float]],
        config: SimulationConfig | None = None,
        *,
        replicas: int = 1,
        jumps_per_point: int = 4000,
        measure_junctions: Sequence[int] = (0,),
        orientations: Sequence[int] | None = None,
        source_setter: Callable[[Mapping[str, float]], dict[str, float]]
        | None = None,
        label: str = "",
        store: CampaignStore | str | Path | None = None,
    ):
        if replicas < 1:
            raise CampaignError(f"replicas must be >= 1, got {replicas}")
        if jumps_per_point < 1:
            raise CampaignError(
                f"jumps_per_point must be >= 1, got {jumps_per_point}"
            )
        self.circuit = circuit
        self.space = (
            space if isinstance(space, ParameterSpace)
            else ParameterSpace(space)
        )
        cfg = config if config is not None else SimulationConfig()
        #: event hashing is part of the campaign contract, so the
        #: fingerprint (computed from this config) is hash-mode-stable
        self.config = cfg.replace(event_hash=True)
        self.replicas = replicas
        self.jumps_per_point = jumps_per_point
        self.junctions = list(measure_junctions)
        self.orientations = (
            list(orientations) if orientations is not None else None
        )
        self.source_setter = (
            source_setter if source_setter is not None else PointSources()
        )
        self.label = label
        self.store = (
            store if isinstance(store, CampaignStore)
            else CampaignStore(store)
        )
        # dimension *names* are identity (they select the sources);
        # their values are not, so overlapping grids share a workload
        self.fingerprint = fingerprint_workload(
            circuit, self.config, kind="campaign",
            values=None, jumps_per_point=jumps_per_point,
            extra=(
                f"solver={self.config.solver}",
                f"junctions={self.junctions!r}",
                f"orientations={self.orientations!r}",
                f"dims={self.space.names!r}",
                f"setter={self.source_setter!r}",
            ),
        )

    # ------------------------------------------------------------------
    def _cells(
        self,
    ) -> tuple[list[CampaignCell], list[str], list[dict[str, Any]]]:
        """The full grid in canonical order: points (C order) × replicas."""
        cells: list[CampaignCell] = []
        keys: list[str] = []
        meta: list[dict[str, Any]] = []
        index = 0
        for point in self.space.points():
            coord = _point_spawn_key(point)
            for replica in range(self.replicas):
                seed = spawn_seed_at(
                    self.config.seed, coord + (replica,)
                )
                cells.append(
                    CampaignCell(
                        index=index,
                        circuit=self.circuit,
                        config=self.config.replace(seed=seed),
                        sources=self.source_setter(dict(point)),
                        point=point,
                        replica=replica,
                        jumps_per_point=self.jumps_per_point,
                        junctions=list(self.junctions),
                        orientations=(
                            list(self.orientations)
                            if self.orientations is not None else None
                        ),
                    )
                )
                keys.append(
                    cell_key(point, replica, seed, self.jumps_per_point)
                )
                meta.append(
                    {
                        "point": {name: value for name, value in point},
                        "replica": replica,
                        "seed": describe_seed(seed),
                    }
                )
                index += 1
        return cells, keys, meta

    def _workload_meta(self) -> dict[str, Any]:
        return {
            "kind": "campaign",
            "label": self.label,
            "dims": list(self.space.names),
            "solver": self.config.solver,
            "jumps_per_point": self.jumps_per_point,
            "junctions": self.junctions,
        }

    def _session(
        self, keys: list[str], meta: list[dict[str, Any]]
    ) -> CacheSession:
        from repro.monitor.ledger import _detect_code_version

        workload = self.store.workload(self.fingerprint)
        workload.describe(self._workload_meta())
        return CacheSession(
            workload, keys, meta, code_version=_detect_code_version()
        )

    # ------------------------------------------------------------------
    def status(self) -> CampaignStatus:
        """Cheap grid-vs-store diff (existence only, no decoding)."""
        _, keys, _ = self._cells()
        workload = self.store.workload(self.fingerprint)
        present = sum(
            1 for key in keys if workload.cell_path(key).exists()
        )
        return CampaignStatus(
            fingerprint=self.fingerprint,
            total=len(keys),
            present=present,
        )

    def run_missing(
        self,
        *,
        jobs: int | None = 1,
        policy: ExecutionPolicy | None = None,
    ) -> CampaignRun:
        """Compute every cell not yet in the store; return the full grid.

        Cached cells are replayed from the store without simulation;
        missing cells run on the ``execute_shards`` pool (``jobs``
        workers, optional retry ``policy``) and are persisted
        atomically as they land — an interrupted campaign loses at
        most its in-flight cells.  Cache traffic is visible as the
        ``campaign.cell_hits`` / ``campaign.cells_computed`` telemetry
        counters and in the returned :class:`CampaignRun`.
        """
        cells, keys, meta = self._cells()
        session = self._session(keys, meta)
        cached = len(session.hits())
        with run_scope("campaign") as recorder:
            with _telemetry.span(
                "campaign.run", category="campaign",
                cells=len(cells), cached=cached, jobs=jobs,
            ):
                results = execute_shards(
                    _run_campaign_cell, cells, jobs=jobs,
                    policy=policy, cache=_FixedKeyCache(session),
                )
            stats = SolverStats().merge(*(r.stats for r in results))
            hashes = [r.event_hash for r in results]
            combined = (
                fold_hashes([h for h in hashes if h is not None])
                if hashes and not any(h is None for h in hashes)
                else None
            )
            currents = np.array(
                [r.current for r in results], dtype=float
            ).reshape(self.space.shape + (self.replicas,))
            if recorder is not None:
                recorder.commit(
                    circuit=self.circuit, config=self.config,
                    values=np.concatenate(self.space.values),
                    jumps_per_point=self.jumps_per_point,
                    label=self.label, jobs=jobs,
                    replicas=self.replicas,
                    stats=stats, event_hash=combined,
                )
        return CampaignRun(
            fingerprint=self.fingerprint,
            shape=self.space.shape,
            replicas=self.replicas,
            cached=cached,
            computed=len(cells) - cached,
            currents=currents,
            stats=stats,
            event_hash=combined,
        )

    # ------------------------------------------------------------------
    def get_results_array(self) -> np.ndarray:
        """The stored grid as a dense array, without running anything.

        Axes are the parameter dimensions in declaration order, then
        replicas.  Raises :class:`CampaignError` when cells are missing
        (run :meth:`run_missing` first) — including cells dropped as
        corrupt during the read.
        """
        _, keys, _ = self._cells()
        workload = self.store.workload(self.fingerprint)
        currents = np.empty(len(keys), dtype=float)
        missing = 0
        for i, key in enumerate(keys):
            cell = workload.load(key)
            if cell is None:
                missing += 1
                continue
            currents[i] = float(cell[0].current)
        if missing:
            raise CampaignError(
                f"{missing} of {len(keys)} campaign cell(s) missing from "
                f"{workload.directory}; run run_missing() first"
            )
        return currents.reshape(self.space.shape + (self.replicas,))

    def combined_hash(self) -> str | None:
        """Fold of the stored cells' event digests in grid order, read
        straight from the cell records (``None`` if any is absent)."""
        _, keys, _ = self._cells()
        workload = self.store.workload(self.fingerprint)
        hashes: list[str] = []
        for key in keys:
            cell = workload.load(key)
            if cell is None or cell[1].get("event_hash") is None:
                return None
            hashes.append(str(cell[1]["event_hash"]))
        return fold_hashes(hashes)

    def to_xarray(self) -> Any:
        """The stored grid as a labelled ``xarray.DataArray``.

        xarray is an optional dependency; without it this raises
        :class:`CampaignError` (the numpy path,
        :meth:`get_results_array`, always works).
        """
        try:
            import xarray
        except ImportError as exc:
            raise CampaignError(
                "xarray is not installed; use get_results_array() for "
                "the plain numpy grid"
            ) from exc
        data = self.get_results_array()
        dims = self.space.names + ("replica",)
        coords: dict[str, Any] = {
            name: axis
            for name, axis in zip(self.space.names, self.space.values)
        }
        coords["replica"] = np.arange(self.replicas)
        return xarray.DataArray(
            data, dims=dims, coords=coords,
            name=self.label or "current",
            attrs={"fingerprint": self.fingerprint},
        )
