"""The content-addressed campaign result store.

One store directory holds many *workloads*; one workload directory —
``<root>/<workload fingerprint>/`` — holds the cells of every campaign
or cached sweep that shares that fingerprint:

``campaign.json``
    Human-readable identity of the workload (kind, label, parameter
    axes, code version of the first writer).  Advisory only — cache
    correctness never depends on it.
``cells/<cell key>.json``
    One computed cell: the pickled result (base64 + blake2b checksum,
    reusing the checkpoint manifest's codec), its dsan event-stream
    hash, the code version that computed it and a UTC timestamp.  Each
    cell is written atomically (temp file + ``os.replace``), so a crash
    mid-write never leaves a torn cell.

Two key schemes share this layout:

* **campaign cells** are keyed by *content*: the parameter point, the
  replica index and the spawned seed's identity — so the same physical
  cell hits the cache from any grid that contains it;
* **sweep shards** (``--campaign`` on ``repro run`` / ``sweep_iv`` /
  ``sweep_map`` / ``ensemble_iv``) are keyed by the worker's qualified
  name plus the shard payload's pickle digest — byte-identical work is
  never recomputed.

Corruption is *never* fatal: a cell that fails to parse, checksum or
unpickle is dropped (``campaign.corrupt_cells`` counter) and treated as
a miss, so the batch recomputes it and overwrites the bad file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import CampaignError, RecoveryError
from repro.ioutil import write_atomic_text
from repro.monitor.ledger import (
    _detect_code_version,
    fingerprint_workload,
    repro_cache_dir,
)
from repro.recovery.manifest import decode_result, encode_result
from repro.telemetry import registry as _telemetry
from repro.telemetry.clock import utc_time

#: Cell record schema version (bump on incompatible layout changes).
CELL_SCHEMA = 1

_CELLS_DIR = "cells"
_META_NAME = "campaign.json"


def default_campaign_root() -> Path:
    """``$REPRO_CAMPAIGN_DIR`` when set, else ``<cache dir>/campaigns``
    (same no-``$HOME`` fallback as the run ledger)."""
    override = os.environ.get("REPRO_CAMPAIGN_DIR")
    if override:
        return Path(override)
    return repro_cache_dir() / "campaigns"


def _hash_text(text: str) -> str:
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def payload_cell_key(worker: Callable[..., Any], payload: Any) -> str:
    """Content address of one shard: worker identity + payload pickle.

    The payload embeds the circuit, the full config (including the
    shard's spawned seed) and the shard's slice of the sweep, so two
    shards share a key exactly when they describe byte-identical work.
    """
    try:
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # repro-lint: allow — pickle raises arbitrary types
        raise CampaignError(
            f"shard payload of type {type(payload).__name__} cannot be "
            f"content-addressed for caching: {exc}"
        ) from exc
    ident = f"{worker.__module__}.{worker.__qualname__}"
    return _hash_text(
        f"shard|{ident}|"
        f"{hashlib.blake2b(raw, digest_size=16).hexdigest()}|{CELL_SCHEMA}"
    )


def _count(name: str, n: int = 1) -> None:
    registry = _telemetry.ACTIVE
    if registry is not None and n:
        registry.counter(name).add(n)


@dataclasses.dataclass
class GcStats:
    """What one :meth:`CampaignStore.gc` pass did."""

    scanned: int = 0
    removed: int = 0
    kept: int = 0
    workloads_removed: int = 0

    def format(self) -> str:
        return (
            f"scanned {self.scanned} cell(s): kept {self.kept}, "
            f"removed {self.removed} "
            f"({self.workloads_removed} empty workload dir(s) pruned)"
        )


class WorkloadStore:
    """One workload's cell directory inside a :class:`CampaignStore`."""

    def __init__(self, root: Path, fingerprint: str):
        self.fingerprint = fingerprint
        self.directory = root / fingerprint
        self._cells = self.directory / _CELLS_DIR

    # ------------------------------------------------------------------
    def _ensure(self) -> None:
        try:
            self._cells.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CampaignError(
                f"campaign store directory {self._cells} is not "
                f"writable: {exc}"
            ) from exc

    def describe(self, meta: dict[str, Any]) -> None:
        """Record the workload's human-readable identity card once."""
        path = self.directory / _META_NAME
        if path.exists():
            return
        self._ensure()
        payload = dict(meta)
        payload.setdefault("schema", CELL_SCHEMA)
        payload.setdefault("fingerprint", self.fingerprint)
        payload.setdefault("created", utc_time())
        self._write_atomic(path, json.dumps(payload, sort_keys=True))

    def meta(self) -> dict[str, Any]:
        """The identity card, or ``{}`` when absent/unreadable."""
        try:
            data = json.loads(
                (self.directory / _META_NAME).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return {}
        return data if isinstance(data, dict) else {}

    # ------------------------------------------------------------------
    def cell_path(self, key: str) -> Path:
        return self._cells / f"{key}.json"

    def keys(self) -> list[str]:
        """Keys of every stored cell, sorted."""
        if not self._cells.is_dir():
            return []
        return sorted(p.stem for p in self._cells.glob("*.json"))

    def load(self, key: str) -> tuple[Any, dict[str, Any]] | None:
        """Decode one cell: ``(result, record meta)``, or ``None``.

        A missing cell is a plain miss.  A *corrupt* cell (unparseable
        JSON, wrong schema, checksum or unpickling failure) is dropped
        from disk, counted as ``campaign.corrupt_cells``, and reported
        as a miss so the caller recomputes it — corruption never aborts
        a campaign.
        """
        path = self.cell_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            return self._drop_corrupt(path)
        try:
            record = json.loads(text)
        except ValueError:
            return self._drop_corrupt(path)
        if not isinstance(record, dict) or record.get("schema") != CELL_SCHEMA:
            return self._drop_corrupt(path)
        try:
            result = decode_result(
                str(record["payload"]), str(record["checksum"]), 0
            )
        except (KeyError, ValueError, RecoveryError):
            return self._drop_corrupt(path)
        return result, record

    def _drop_corrupt(self, path: Path) -> tuple[Any, dict[str, Any]] | None:
        _count("campaign.corrupt_cells")
        try:
            path.unlink()
        except OSError:
            pass
        return None

    def save(
        self,
        key: str,
        result: Any,
        *,
        meta: dict[str, Any] | None = None,
        code_version: str = "",
    ) -> None:
        """Persist one computed cell atomically."""
        self._ensure()
        payload, checksum = encode_result(result)
        record: dict[str, Any] = {
            "schema": CELL_SCHEMA,
            "key": key,
            "payload": payload,
            "checksum": checksum,
            "event_hash": getattr(result, "event_hash", None),
            "code_version": code_version,
            "ts": utc_time(),
        }
        if meta:
            record.update(meta)
        self._write_atomic(
            self.cell_path(key), json.dumps(record, sort_keys=True)
        )

    def _write_atomic(self, path: Path, text: str) -> None:
        write_atomic_text(path, text, error=CampaignError)


class CampaignStore:
    """The persistent, content-addressed results database.

    A thin root-directory handle: :meth:`workload` scopes it to one
    workload fingerprint, :meth:`begin` implements the
    :class:`repro.parallel.pool.ShardCache` protocol so
    ``execute_shards`` can consult it directly, and :meth:`gc` applies
    retention policy.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_campaign_root()

    def workload(self, fingerprint: str) -> WorkloadStore:
        return WorkloadStore(self.root, fingerprint)

    def workloads(self) -> Iterator[WorkloadStore]:
        """Every workload directory under the root, sorted."""
        if not self.root.is_dir():
            return
        for child in sorted(self.root.iterdir()):
            if child.is_dir():
                yield WorkloadStore(self.root, child.name)

    # ------------------------------------------------------------------
    # the execute_shards cache protocol (sweep shards)
    # ------------------------------------------------------------------

    def bind(
        self, fingerprint: str, *, code_version: str = "", label: str = ""
    ) -> "BoundWorkloadCache":
        """A :class:`repro.parallel.pool.ShardCache` over one workload,
        keying cells by shard-payload content."""
        return BoundWorkloadCache(
            self.workload(fingerprint), code_version=code_version, label=label
        )

    # ------------------------------------------------------------------
    def gc(
        self,
        *,
        keep_code_version: str | None = None,
        older_than: float | None = None,
        fingerprint: str | None = None,
    ) -> GcStats:
        """Apply retention: drop cells from other code versions and/or
        cells older than ``older_than`` seconds; prune emptied
        workload directories.  With no criteria this is a no-op scan.
        """
        stats = GcStats()
        now = utc_time()
        for workload in self.workloads():
            if fingerprint is not None and workload.fingerprint != fingerprint:
                continue
            for key in workload.keys():
                stats.scanned += 1
                path = workload.cell_path(key)
                try:
                    record = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, ValueError):
                    record = None  # unreadable: always collected
                remove = record is None
                if record is not None and keep_code_version is not None:
                    remove = record.get("code_version") != keep_code_version
                if record is not None and not remove and older_than is not None:
                    try:
                        age = now - float(record.get("ts", 0.0))
                    except (TypeError, ValueError):
                        age = older_than + 1.0
                    remove = age > older_than
                if remove:
                    try:
                        path.unlink()
                        stats.removed += 1
                    except OSError:
                        stats.kept += 1
                else:
                    stats.kept += 1
            if not workload.keys():
                # nothing left: prune the whole workload directory
                try:
                    meta_path = workload.directory / _META_NAME
                    if meta_path.exists():
                        meta_path.unlink()
                    if (workload.directory / _CELLS_DIR).is_dir():
                        (workload.directory / _CELLS_DIR).rmdir()
                    workload.directory.rmdir()
                    stats.workloads_removed += 1
                except OSError:
                    pass
        return stats


def bind_sweep_cache(
    campaign: "CampaignStore | str | Path",
    circuit: Any,
    config: Any,
    *,
    kind: str,
    values: Any,
    jumps_per_point: int,
    label: str = "",
) -> "BoundWorkloadCache":
    """Bind a sweep entry point's ``campaign=`` argument to a shard
    cache: fingerprint the workload (the solver rides in ``extra``
    because :func:`fingerprint_workload` excludes it by default) and
    scope the store to that workload directory."""
    store = (
        campaign if isinstance(campaign, CampaignStore)
        else CampaignStore(campaign)
    )
    fingerprint = fingerprint_workload(
        circuit, config, kind=kind,
        values=values, jumps_per_point=jumps_per_point,
        extra=(f"solver={config.solver}",),
    )
    cache = store.bind(
        fingerprint, code_version=_detect_code_version(), label=label
    )
    cache.workload.describe(
        {"kind": kind, "label": label, "jumps_per_point": jumps_per_point}
    )
    return cache


class BoundWorkloadCache:
    """Adapts one :class:`WorkloadStore` to the ``execute_shards``
    cache protocol, keying each shard by its payload content."""

    def __init__(
        self, workload: WorkloadStore, *, code_version: str = "",
        label: str = "",
    ):
        self.workload = workload
        self.code_version = code_version
        self.label = label

    def begin(
        self, worker: Callable[..., Any], payloads: list[Any]
    ) -> "CacheSession":
        keys = [payload_cell_key(worker, payload) for payload in payloads]
        meta = [{"shard": index} for index in range(len(payloads))]
        return CacheSession(
            self.workload, keys, meta, code_version=self.code_version
        )


class CacheSession:
    """One batch's binding to a workload store: precomputed cell keys,
    memoized hits, per-shard persistence.  Implements the
    ``execute_shards`` :class:`~repro.parallel.pool.ShardCacheSession`
    protocol; the campaign layer also drives it directly."""

    def __init__(
        self,
        workload: WorkloadStore,
        keys: list[str],
        meta: list[dict[str, Any]] | None = None,
        *,
        code_version: str = "",
    ):
        self.workload = workload
        self.keys = list(keys)
        self.meta = list(meta) if meta is not None else [{} for _ in keys]
        self.code_version = code_version
        self._hits: dict[int, Any] | None = None
        self.stored = 0

    def hits(self) -> dict[int, Any]:
        if self._hits is None:
            self._hits = {}
            for index, key in enumerate(self.keys):
                cell = self.workload.load(key)
                if cell is not None:
                    self._hits[index] = cell[0]
        return self._hits

    def record(self, shard: int, result: Any) -> None:
        self.workload.save(
            self.keys[shard],
            result,
            meta=self.meta[shard],
            code_version=self.code_version,
        )
        self.stored += 1
