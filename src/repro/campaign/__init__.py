"""Persistent campaign manager and content-addressed result cache.

The paper's experiments are parameter sweeps repeated across seeds;
``repro.campaign`` makes those *incremental*.  A
:class:`CampaignStore` is a durable, content-addressed database of
computed cells; a :class:`Campaign` crosses one workload with an
explicit :class:`ParameterSpace` and replica count, and
:meth:`Campaign.run_missing` computes only the cells the store does
not already hold — a second identical run simulates nothing and
returns bit-identical arrays (provable via the folded dsan event
hash), an overlapping grid computes only its new cells.

The same store also backs ``--campaign`` on the sweep entry points
(:func:`repro.core.sweep.sweep_iv` / ``sweep_map`` /
:func:`repro.parallel.ensemble_iv` and ``repro run``), caching whole
sweep shards by payload content.

See the module docstrings of :mod:`repro.campaign.store` and
:mod:`repro.campaign.campaign` for the layout and identity contracts.
"""

from __future__ import annotations

from repro.campaign.campaign import (
    Campaign,
    CampaignCell,
    CampaignRun,
    CampaignStatus,
    CellResult,
    ParameterSpace,
    PointSources,
    cell_key,
)
from repro.campaign.store import (
    BoundWorkloadCache,
    CacheSession,
    CampaignStore,
    GcStats,
    WorkloadStore,
    bind_sweep_cache,
    default_campaign_root,
    payload_cell_key,
)

__all__ = [
    "BoundWorkloadCache",
    "CacheSession",
    "Campaign",
    "CampaignCell",
    "CampaignRun",
    "CampaignStatus",
    "CampaignStore",
    "CellResult",
    "GcStats",
    "ParameterSpace",
    "PointSources",
    "WorkloadStore",
    "bind_sweep_cache",
    "cell_key",
    "default_campaign_root",
    "payload_cell_key",
]
