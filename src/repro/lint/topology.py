"""Topology pass: graph-level defects of a frozen :class:`Circuit`.

Detects, without any linear algebra, the structural problems that make
the electrostatics singular or the Monte Carlo ill-posed:

* island groups with no capacitive path to a fixed potential — the
  Maxwell capacitance matrix restricted to islands becomes singular
  (``SEM010``);
* islands with no junction, whose charge can never change (``SEM011``);
* junctions between two externally pinned nodes, which carry a
  state-independent current and therefore starve every other event of
  Monte Carlo time (``SEM012``);
* several mutually decoupled island groups in one deck (``SEM013``).
"""

from __future__ import annotations

from repro.circuit.circuit import Circuit
from repro.lint.diagnostics import Diagnostic, diag


def _island_components(circuit: Circuit) -> list[list[int]]:
    """Connected components of the island-island coupling graph."""
    adjacency = circuit.island_adjacency()
    n = circuit.n_islands
    seen = [False] * n
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        component = []
        while stack:
            node = stack.pop()
            component.append(node)
            for other in adjacency[node]:
                if not seen[other]:
                    seen[other] = True
                    stack.append(other)
        components.append(sorted(component))
    return components


def _externally_anchored(circuit: Circuit) -> set[int]:
    """Islands with a direct junction/capacitor link to an external node."""
    anchored: set[int] = set()

    def visit(label_a, label_b) -> None:
        ref_a = circuit.node_refs[label_a]
        ref_b = circuit.node_refs[label_b]
        if ref_a.is_island != ref_b.is_island:
            island = ref_a if ref_a.is_island else ref_b
            anchored.add(island.index)

    for junction in circuit.junctions:
        visit(junction.node_a, junction.node_b)
    for capacitor in circuit.capacitors:
        visit(capacitor.node_a, capacitor.node_b)
    return anchored


def check_topology(circuit: Circuit) -> list[Diagnostic]:
    """Run the topology pass and return its findings."""
    out: list[Diagnostic] = []
    anchored = _externally_anchored(circuit)
    components = _island_components(circuit)

    for component in components:
        if not any(i in anchored for i in component):
            labels = ", ".join(str(circuit.island_labels[i]) for i in component[:6])
            if len(component) > 6:
                labels += ", ..."
            out.append(diag(
                "SEM010",
                f"island group {{{labels}}} has no capacitive path to ground "
                "or any source; the capacitance matrix is singular",
                where=f"{len(component)} island(s)",
            ))

    on_island = circuit.junctions_on_island()
    for i, junctions in enumerate(on_island):
        if not junctions:
            out.append(diag(
                "SEM011",
                "island has no tunnel junction; its charge state can never "
                "change during simulation",
                where=f"node {circuit.island_labels[i]!r}",
            ))

    for rj in circuit.resolved_junctions():
        if not rj.ref_a.is_island and not rj.ref_b.is_island:
            out.append(diag(
                "SEM012",
                "both endpoints are externally pinned; tunnel events through "
                "it never change the circuit state",
                where=f"junction {rj.name!r}",
            ))

    if len(components) > 1:
        out.append(diag(
            "SEM013",
            f"the {circuit.n_islands} islands form {len(components)} "
            "mutually decoupled groups; they evolve independently",
        ))
    return out
