"""Deck pass: structural checks of a parsed SEMSIM deck, then the
circuit-level passes on the circuit it describes.

This is the orchestration layer behind ``repro lint <deck>``: it never
raises on defective input — every problem, including ones the builder
or electrostatics backend would throw for, comes back as a
:class:`~repro.lint.diagnostics.Diagnostic`.  Junction/capacitor
findings are annotated with the deck line that declared the component
(threaded through :attr:`SemsimDeck.directive_lines`).
"""

from __future__ import annotations

import dataclasses

from repro.circuit.components import canonical_label
from repro.errors import CircuitError, NetlistError
from repro.lint.conditioning import check_conditioning
from repro.lint.diagnostics import Diagnostic, diag
from repro.lint.physics import check_physics
from repro.lint.simconfig import check_config, check_jumps, check_sweep
from repro.lint.topology import check_topology
from repro.netlist.semsim import SemsimDeck


def _structural(deck: SemsimDeck) -> list[Diagnostic]:
    out: list[Diagnostic] = []

    for message, line in deck.validation_problems():
        out.append(diag("SEM002", message, line=line))

    seen: set[str] = set()
    touched: set[str] = set()
    for name, a, b, conductance, capacitance in deck.junctions:
        line = deck.line_of(f"junc {name}")
        if name in seen:
            out.append(diag(
                "SEM003", f"junction id {name!r} is defined more than once",
                where=f"junction {name!r}", line=line,
            ))
        seen.add(name)
        if canonical_label(a) == canonical_label(b):
            out.append(diag(
                "SEM004", f"junction {name!r} connects node {a!r} to itself",
                where=f"junction {name!r}", line=line,
            ))
        if capacitance <= 0.0:
            out.append(diag(
                "SEM001",
                f"junction {name!r}: capacitance must be > 0, got {capacitance:g}",
                where=f"junction {name!r}", line=line,
            ))
        touched.update((canonical_label(a), canonical_label(b)))

    for i, (a, b, capacitance) in enumerate(deck.capacitors, start=1):
        line = deck.line_of(f"cap {i}")
        if canonical_label(a) == canonical_label(b):
            out.append(diag(
                "SEM004", f"capacitor between {a!r} and {b!r} is a self-loop",
                where=f"capacitor {i}", line=line,
            ))
        if capacitance <= 0.0:
            out.append(diag(
                "SEM001",
                f"capacitor between {a!r} and {b!r}: capacitance must be > 0, "
                f"got {capacitance:g}",
                where=f"capacitor {i}", line=line,
            ))
        touched.update((canonical_label(a), canonical_label(b)))

    driven: set[str] = set()
    for node, _voltage in deck.sources:
        label = canonical_label(node)
        line = deck.line_of(f"vdc {node}")
        if label == "0":
            out.append(diag(
                "SEM005", "a source may not drive the ground node",
                where=f"vdc {node}", line=line,
            ))
        elif label in driven:
            out.append(diag(
                "SEM005", f"node {node!r} is driven by more than one source",
                where=f"vdc {node}", line=line,
            ))
        elif label not in touched:
            out.append(diag(
                "SEM005",
                f"source drives node {node!r}, which no junction or "
                "capacitor touches",
                where=f"vdc {node}", line=line,
            ))
        driven.add(label)

    if deck.symmetric_node is not None \
            and canonical_label(deck.symmetric_node) not in driven:
        out.append(diag(
            "SEM006",
            f"symm names node {deck.symmetric_node!r}, which has no vdc source",
            where="symm", line=deck.line_of("symm"),
        ))
    if deck.sweep is not None and canonical_label(deck.sweep.node) not in driven:
        out.append(diag(
            "SEM006",
            f"sweep targets node {deck.sweep.node!r}, which has no vdc source",
            where="sweep", line=deck.line_of("sweep"),
        ))
    if deck.record is not None:
        ids = {name for name, *_ in deck.junctions}
        for jid in (deck.record.first_junction, deck.record.last_junction):
            if str(jid) not in ids:
                out.append(diag(
                    "SEM006",
                    f"record names junction {jid}, which is not defined",
                    where="record", line=deck.line_of("record"),
                ))
        if deck.record.last_junction < deck.record.first_junction:
            out.append(diag(
                "SEM006",
                f"record range {deck.record.first_junction}.."
                f"{deck.record.last_junction} is empty",
                where="record", line=deck.line_of("record"),
            ))
    return out


def _component_lines(deck: SemsimDeck) -> dict[str, int]:
    """Map circuit-pass ``where`` strings to deck line numbers."""
    mapping: dict[str, int] = {}
    for name, *_ in deck.junctions:
        line = deck.line_of(f"junc {name}")
        if line is not None:
            mapping[f"junction 'j{name}'"] = line
    for i in range(1, len(deck.capacitors) + 1):
        line = deck.line_of(f"cap {i}")
        if line is not None:
            mapping[f"capacitor 'c{i}'"] = line
    return mapping


def _attach_lines(
    diagnostics: list[Diagnostic], deck: SemsimDeck
) -> list[Diagnostic]:
    mapping = _component_lines(deck)
    out = []
    for d in diagnostics:
        line = mapping.get(d.where or "")
        if line is not None and d.line is None:
            d = dataclasses.replace(d, line=line)
        out.append(d)
    return out


def check_deck(deck: SemsimDeck) -> list[Diagnostic]:
    """All passes over a parsed deck; never raises on defective input."""
    out = _structural(deck)
    if any(d.code in ("SEM001", "SEM004") for d in out):
        # the circuit cannot even be built; stop at the structural report
        return out

    try:
        circuit = deck.unchecked_circuit()
    except (NetlistError, CircuitError) as exc:
        out.append(diag("SEM001", f"circuit construction failed: {exc}"))
        return out

    circuit_diags = check_topology(circuit)
    singular = any(d.code == "SEM010" for d in circuit_diags)
    circuit_diags += check_conditioning(circuit, skip_condition_number=singular)
    circuit_diags += check_physics(
        circuit, deck.temperature, cotunneling=deck.cotunnel
    )
    out += _attach_lines(circuit_diags, deck)

    out += check_config(deck.config())
    out += check_jumps(deck.jumps)
    if deck.sweep is not None:
        out += check_sweep(circuit, deck.sweep.step, deck.sweep.maximum)
    return out
