"""Physics-regime pass: validity limits of the orthodox/superconducting models.

Orthodox theory (Eq. 1-2 of the paper) is a perturbative treatment that
holds only for ``R_T >> R_K = h/e^2`` and ``E_C >> k_B T``; the
superconducting extension further assumes the incoherent Cooper-pair
regime ``R_N >> R_Q`` and ``E_J << E_c`` (Sec. III-A, reusing
:func:`repro.physics.cooper.validate_regime`).  A deck outside those
limits still *runs* — this pass is what stands between the user and
silently meaningless numbers.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.electrostatics import assemble_capacitance
from repro.constants import E_CHARGE, K_B, R_K
from repro.errors import PhysicsError
from repro.lint.diagnostics import Diagnostic, diag
from repro.physics.cooper import josephson_energy, validate_regime

#: Largest island count for which the exact ``C^-1`` is formed; bigger
#: circuits fall back to the diagonal estimate ``K_ii ~ 1/C_ii``.
EXACT_INVERSE_LIMIT = 2000


def charging_energies(circuit: Circuit) -> np.ndarray:
    """Per-island charging energy ``E_C,i = e^2 K_ii / 2`` in joules.

    Exact (dense inverse) for small circuits; the diagonally dominant
    approximation ``K_ii ~ 1/C_ii`` for large ones, which is accurate
    to the coupling ratio and plenty for an order-of-magnitude check.
    """
    cmat, _ = assemble_capacitance(circuit)
    n = circuit.n_islands
    if n == 0:
        return np.zeros(0)
    diagonal = cmat.diagonal()
    if n <= EXACT_INVERSE_LIMIT:
        try:
            kdiag = np.diag(np.linalg.inv(cmat.toarray()))
        except np.linalg.LinAlgError:
            kdiag = 1.0 / np.where(diagonal > 0.0, diagonal, np.inf)
    else:
        kdiag = 1.0 / np.where(diagonal > 0.0, diagonal, np.inf)
    return 0.5 * E_CHARGE * E_CHARGE * np.abs(kdiag)


def check_physics(
    circuit: Circuit,
    temperature: float,
    *,
    cotunneling: bool = False,
) -> list[Diagnostic]:
    """Run the physics-regime pass at the given bath temperature."""
    out: list[Diagnostic] = []

    for junction in circuit.junctions:
        if junction.resistance <= R_K:
            out.append(diag(
                "SEM030",
                f"R_T = {junction.resistance:.3g} Ohm <= R_K = {R_K:.0f} Ohm; "
                "orthodox theory requires R_T >> h/e^2 and its rates are "
                "unreliable here",
                where=f"junction {junction.name!r}",
            ))

    energies = charging_energies(circuit)
    kt = K_B * temperature
    if energies.size and kt > 0.0:
        weakest = int(np.argmin(energies))
        e_c = float(energies[weakest])
        label = circuit.island_labels[weakest]
        if e_c <= kt:
            out.append(diag(
                "SEM031",
                f"minimum charging energy {e_c:.3g} J <= k_B T = {kt:.3g} J "
                f"at T = {temperature:g} K; the Coulomb blockade is washed out",
                where=f"node {label!r}",
            ))
        elif e_c <= 10.0 * kt:
            out.append(diag(
                "SEM032",
                f"minimum charging energy {e_c:.3g} J is only "
                f"{e_c / kt:.1f} k_B T at T = {temperature:g} K; expect "
                "strong thermal smearing",
                where=f"node {label!r}",
            ))

    superconductor = circuit.superconductor
    if superconductor is not None and temperature >= superconductor.tc:
        out.append(diag(
            "SEM033",
            f"T = {temperature:g} K is at or above Tc = "
            f"{superconductor.tc:g} K; the film is normal and the "
            "superconducting physics never engages — drop the super "
            "directive or cool the bath",
        ))
    if superconductor is not None and energies.size:
        delta = superconductor.delta0
        e_c_max = float(np.max(energies))
        for junction in circuit.junctions:
            ej = josephson_energy(junction.resistance, delta, temperature)
            try:
                validate_regime(junction.resistance, ej, e_c_max)
            except PhysicsError as exc:
                out.append(diag(
                    "SEM033",
                    str(exc),
                    where=f"junction {junction.name!r}",
                ))
        if delta > e_c_max:
            out.append(diag(
                "SEM034",
                f"gap Delta = {delta:.3g} J exceeds the largest charging "
                f"energy {e_c_max:.3g} J; odd-even parity effects dominate "
                "the sub-gap region",
            ))

    if cotunneling and circuit.n_junctions < 2:
        out.append(diag(
            "SEM035",
            "cotunneling is enabled but the circuit has a single junction; "
            "second-order events need two junctions sharing an island",
        ))
    return out
