"""Diagnostic records and the stable ``SEM0xx`` code registry.

Every lint pass emits :class:`Diagnostic` records rather than raising:
static analysis must report *all* problems of an input, not just the
first, and must never abort on a malformed circuit (that is its job to
describe).  Codes are stable across releases so scripts can filter on
them; the registry below is the single source of truth for default
severities and the documentation table in the README.
"""

from __future__ import annotations

import dataclasses
import enum


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclasses.dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    severity: Severity
    title: str
    fix: str


def _c(code: str, severity: Severity, title: str, fix: str) -> CodeInfo:
    return CodeInfo(code, severity, title, fix)


#: The full diagnostic vocabulary.  Grouped by pass:
#: SEM00x structural/parse, SEM01x topology, SEM02x numerical
#: conditioning, SEM03x physics regime, SEM04x simulation config,
#: SEM05x logic netlists.
CODES: dict[str, CodeInfo] = {c.code: c for c in (
    # --- structural / parse -------------------------------------------
    _c("SEM001", Severity.ERROR, "input could not be parsed",
       "fix the directive reported on the given line"),
    _c("SEM002", Severity.ERROR, "declared counts disagree with the parsed components",
       "update the 'num j/ext/nodes' directives or the component lists"),
    _c("SEM003", Severity.ERROR, "duplicate component identifier",
       "rename one of the components"),
    _c("SEM004", Severity.ERROR, "component connects a node to itself",
       "check the node fields of the junc/cap directive"),
    _c("SEM005", Severity.ERROR, "voltage source problem (duplicate or untouched node)",
       "drive each node with at most one vdc, on a node some component touches"),
    _c("SEM006", Severity.ERROR, "directive references an unknown junction or node",
       "point record/sweep/symm at components that exist"),
    # --- topology ------------------------------------------------------
    _c("SEM010", Severity.ERROR, "floating island group (singular capacitance matrix)",
       "add a capacitor or junction from the group to ground, a source, "
       "or another anchored island"),
    _c("SEM011", Severity.WARNING, "island has no tunnel junction; its charge is frozen",
       "remove the node or attach a junction if transport was intended"),
    _c("SEM012", Severity.ERROR, "junction connects two externally driven nodes",
       "route the junction through an island; a lead-lead junction "
       "carries state-independent current and stalls the Monte Carlo"),
    _c("SEM013", Severity.INFO, "circuit splits into independent island groups",
       "simulate the subcircuits separately for better statistics"),
    # --- numerical conditioning ---------------------------------------
    _c("SEM020", Severity.WARNING, "ill-conditioned capacitance matrix",
       "reduce the spread of capacitance values or anchor weakly "
       "coupled islands more strongly"),
    _c("SEM021", Severity.WARNING, "capacitance outside the single-electron scale",
       "check the units: single-electron devices live in the aF-fF "
       "range (the deck field is in farads)"),
    _c("SEM022", Severity.WARNING, "resistance below 1 Ohm",
       "check the units: the junc field is a conductance in siemens, "
       "not a resistance"),
    _c("SEM023", Severity.INFO, "island count above the dense-backend limit",
       "nothing to fix; the sparse solver backend will be selected and "
       "the condition-number estimate is skipped"),
    # --- physics regime ------------------------------------------------
    _c("SEM030", Severity.WARNING, "junction resistance at or below R_K = h/e^2",
       "orthodox theory needs R_T >> 25.8 kOhm; raise the resistance "
       "or treat the results as qualitative"),
    _c("SEM031", Severity.WARNING, "charging energy at or below k_B T",
       "lower the temperature or shrink the capacitances; thermal "
       "smearing has destroyed the Coulomb blockade"),
    _c("SEM032", Severity.INFO, "charging energy within 10 k_B T",
       "expect visibly thermally smeared I-V features"),
    _c("SEM033", Severity.WARNING, "Cooper-pair model regime violated",
       "the incoherent-Lorentzian picture needs R_N >> R_Q and "
       "E_J << E_c (Ambegaokar-Baratoff high-resistance regime)"),
    _c("SEM034", Severity.INFO, "superconducting gap exceeds every charging energy",
       "sub-gap transport will be dominated by parity effects the "
       "model does not capture quantitatively"),
    _c("SEM035", Severity.WARNING, "cotunneling enabled on a single-junction circuit",
       "second-order cotunneling needs at least two junctions sharing "
       "an island; disable 'cotunnel' or extend the circuit"),
    # --- simulation config ---------------------------------------------
    _c("SEM040", Severity.WARNING, "sweep step wider than the Coulomb-blockade width",
       "shrink the sweep step below e/C_sigma to resolve the blockade"),
    _c("SEM041", Severity.WARNING, "sweep generates a very large number of points",
       "increase the step or narrow the range"),
    _c("SEM042", Severity.WARNING, "adaptive threshold lambda above 0.2",
       "large lambda lets rates go stale; the paper's accuracy data "
       "covers lambda <= 0.1"),
    _c("SEM043", Severity.WARNING, "full-refresh interval above 100000 events",
       "lower full_refresh_interval to bound accumulated rate error"),
    _c("SEM044", Severity.INFO, "very small event budget per operating point",
       "increase 'jumps'; current estimates below ~1000 events are "
       "noise-dominated"),
    _c("SEM045", Severity.ERROR, "event budget too small to honor the warm-up",
       "the 20% measurement warm-up of 'jumps' truncates to zero events "
       "and the engine refuses to measure an unrelaxed state; use "
       "jumps >= 5"),
    # --- logic netlists -------------------------------------------------
    _c("SEM050", Severity.ERROR, "gate input reads an undriven net",
       "declare the net as a primary input or drive it with a gate"),
    _c("SEM051", Severity.ERROR, "primary output net is undriven",
       "drive the declared output with a gate or a primary input"),
    _c("SEM052", Severity.ERROR, "combinational loop",
       "break the cycle; the mapped SET logic is purely combinational"),
    _c("SEM053", Severity.ERROR, "net driven by more than one gate",
       "give each driving gate its own output net"),
    _c("SEM054", Severity.WARNING, "primary input is never read",
       "remove the input or connect it"),
    _c("SEM055", Severity.WARNING, "gate output drives nothing",
       "use the net or drop the gate; dead logic costs junctions"),
    _c("SEM056", Severity.ERROR, "gate output feeds its own input",
       "insert intermediate logic; a direct self-loop cannot settle"),
)}


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer.

    ``where`` names the offending object (a junction, node, net or
    directive), ``line`` is the 1-based source line for text inputs.
    """

    code: str
    severity: Severity
    message: str
    where: str | None = None
    line: int | None = None

    def format(self) -> str:
        loc = f" (line {self.line})" if self.line is not None else ""
        subject = f" {self.where}:" if self.where else ""
        return f"{self.code} {self.severity}:{subject} {self.message}{loc}"


def diag(
    code: str,
    message: str,
    *,
    where: str | None = None,
    line: int | None = None,
    severity: Severity | None = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting severity from the registry."""
    info = CODES[code]
    return Diagnostic(
        code=code,
        severity=info.severity if severity is None else severity,
        message=message,
        where=where,
        line=line,
    )


@dataclasses.dataclass(frozen=True)
class LintReport:
    """The ordered findings of one lint run."""

    diagnostics: tuple[Diagnostic, ...]
    subject: str = "input"

    # ------------------------------------------------------------------
    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def codes(self) -> frozenset[str]:
        return frozenset(d.code for d in self.diagnostics)

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # ------------------------------------------------------------------
    @property
    def exit_code(self) -> int:
        """Process exit code mirroring the worst severity (0/1/2)."""
        worst = self.max_severity
        if worst is None or worst is Severity.INFO:
            return 0
        return 1 if worst is Severity.WARNING else 2

    def summary(self) -> str:
        """One-line count summary, e.g. ``2 errors, 1 warning``."""
        if not self.diagnostics:
            return "clean"
        counts = []
        for severity, noun in (
            (Severity.ERROR, "error"),
            (Severity.WARNING, "warning"),
            (Severity.INFO, "info note"),
        ):
            n = sum(1 for d in self.diagnostics if d.severity is severity)
            if n:
                counts.append(f"{n} {noun}{'s' if n != 1 else ''}")
        return ", ".join(counts)

    def format(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [d.format() for d in self.diagnostics]
        lines.append(f"{self.subject}: {self.summary()}")
        return "\n".join(lines)
