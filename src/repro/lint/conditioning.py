"""Numerical-conditioning pass: scales and solvability of the linear algebra.

Uses the same Maxwell-matrix assembly as :class:`Electrostatics`
(:func:`repro.circuit.electrostatics.assemble_capacitance`) but reports
problems as diagnostics instead of raising, and estimates the condition
number before any solver commits to a factorisation.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.electrostatics import DENSE_LIMIT_DEFAULT, assemble_capacitance
from repro.lint.diagnostics import Diagnostic, Severity, diag

#: Capacitances above this are assumed to be unit mistakes (1 nF is six
#: orders of magnitude above the fF wiring scale of SET circuits).
CAPACITANCE_CEILING = 1e-9
#: Resistances below this are assumed to be unit mistakes (the deck's
#: ``junc`` field is a conductance; 1/G < 1 Ohm means G > 1 S).
RESISTANCE_FLOOR = 1.0
#: Condition numbers above ``COND_WARN`` get a warning; above
#: ``COND_ERROR`` the dense backend's own singularity gate would fire.
COND_WARN = 1e8
COND_ERROR = 1e12
#: Largest island count for which the dense condition estimate is run.
COND_CHECK_LIMIT = 2000


def check_conditioning(
    circuit: Circuit, *, skip_condition_number: bool = False
) -> list[Diagnostic]:
    """Run the conditioning pass.

    ``skip_condition_number`` is set by the runner when the topology
    pass already proved the matrix singular (``SEM010``); repeating the
    news as an infinite condition number would be noise.
    """
    out: list[Diagnostic] = []

    for junction in circuit.junctions:
        if junction.capacitance > CAPACITANCE_CEILING:
            out.append(diag(
                "SEM021",
                f"capacitance {junction.capacitance:.3g} F is far above the "
                "single-electron scale (aF-fF); the deck field is in farads",
                where=f"junction {junction.name!r}",
            ))
        if junction.resistance < RESISTANCE_FLOOR:
            out.append(diag(
                "SEM022",
                f"resistance {junction.resistance:.3g} Ohm is below 1 Ohm; "
                "the deck's junc field is a conductance in siemens",
                where=f"junction {junction.name!r}",
            ))
    for capacitor in circuit.capacitors:
        if capacitor.capacitance > CAPACITANCE_CEILING:
            out.append(diag(
                "SEM021",
                f"capacitance {capacitor.capacitance:.3g} F is far above the "
                "single-electron scale (aF-fF); the deck field is in farads",
                where=f"capacitor {capacitor.name!r}",
            ))

    n = circuit.n_islands
    if n > DENSE_LIMIT_DEFAULT:
        out.append(diag(
            "SEM023",
            f"{n} islands exceed the dense-backend limit "
            f"({DENSE_LIMIT_DEFAULT}); the sparse LU backend will be used",
        ))

    if not skip_condition_number and 0 < n <= COND_CHECK_LIMIT:
        cmat, _ = assemble_capacitance(circuit)
        cond = float(np.linalg.cond(cmat.toarray()))
        if not np.isfinite(cond) or cond > COND_ERROR:
            out.append(diag(
                "SEM020",
                f"capacitance matrix condition number is {cond:.3g}; the "
                "electrostatics solver will reject it as singular",
                severity=Severity.ERROR,
            ))
        elif cond > COND_WARN:
            out.append(diag(
                "SEM020",
                f"capacitance matrix condition number is {cond:.3g}; island "
                "potentials lose up to half their significant digits",
            ))
    return out
