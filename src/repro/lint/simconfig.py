"""Simulation-configuration pass: sweep resolution and solver knobs.

Checks that the *measurement* a deck describes can resolve the physics
its circuit produces — a sweep step wider than ``e/C_sigma`` walks
straight over the Coulomb blockade it is presumably trying to map —
and that the adaptive solver's accuracy knobs (the paper's ``lambda``
and the periodic full refresh of Sec. III-B) sit in the regime the
paper's accuracy data covers.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.electrostatics import assemble_capacitance
from repro.constants import E_CHARGE
from repro.core.config import SimulationConfig
from repro.lint.diagnostics import Diagnostic, diag

#: Sweeps above this many points draw a cost warning.
SWEEP_POINTS_CEILING = 200_000
#: Event budgets below this draw a statistics note.
JUMPS_FLOOR = 1000
#: Fraction of the event budget the engine discards as warm-up.
WARMUP_FRACTION = 0.2
#: Adaptive thresholds above this draw an accuracy warning.
THRESHOLD_CEILING = 0.2
#: Refresh intervals above this draw a drift warning.
REFRESH_CEILING = 100_000


def blockade_voltage_scale(circuit: Circuit) -> float | None:
    """Smallest ``e/C_sigma`` over the islands: the finest blockade width."""
    if circuit.n_islands == 0:
        return None
    cmat, _ = assemble_capacitance(circuit)
    c_sigma = float(np.max(cmat.diagonal()))
    if c_sigma <= 0.0:
        return None
    return E_CHARGE / c_sigma


def check_config(config: SimulationConfig) -> list[Diagnostic]:
    """Sanity of the solver knobs alone (no circuit needed)."""
    out: list[Diagnostic] = []
    if config.adaptive_threshold > THRESHOLD_CEILING:
        out.append(diag(
            "SEM042",
            f"adaptive threshold lambda = {config.adaptive_threshold:g} "
            "exceeds 0.2; the paper's accuracy evaluation (Fig. 7) stops "
            "at 0.1",
        ))
    if config.full_refresh_interval > REFRESH_CEILING:
        out.append(diag(
            "SEM043",
            f"full_refresh_interval = {config.full_refresh_interval} lets "
            "adaptive rate staleness accumulate for a long time between "
            "refreshes",
        ))
    return out


def check_sweep(circuit: Circuit, step: float, maximum: float) -> list[Diagnostic]:
    """Sweep resolution and cost versus the circuit's blockade scale."""
    out: list[Diagnostic] = []
    scale = blockade_voltage_scale(circuit)
    if scale is not None and step > scale:
        out.append(diag(
            "SEM040",
            f"sweep step {step:g} V exceeds the narrowest blockade width "
            f"e/C_sigma = {scale:.3g} V; Coulomb features will be skipped",
        ))
    if step > 0.0:
        points = int(round(2.0 * maximum / step)) + 1
        if points > SWEEP_POINTS_CEILING:
            out.append(diag(
                "SEM041",
                f"sweep produces {points} operating points; consider a "
                "coarser step or a narrower range",
            ))
    return out


def check_jumps(jumps: int) -> list[Diagnostic]:
    """Event-budget sanity for one operating point."""
    out: list[Diagnostic] = []
    if int(jumps * WARMUP_FRACTION) == 0:
        out.append(diag(
            "SEM045",
            f"jumps = {jumps} is too small to honor the "
            f"{WARMUP_FRACTION:.0%} measurement warm-up: "
            "engine.measure_current refuses to measure an unrelaxed "
            "charge state",
        ))
    if jumps < JUMPS_FLOOR:
        out.append(diag(
            "SEM044",
            f"jumps = {jumps} events per operating point gives noisy "
            "current estimates; 10^4-10^5 is typical",
        ))
    return out
