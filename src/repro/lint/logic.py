"""Logic-netlist pass: connectivity defects of gate-level networks.

Works on the *raw* tokenised form (:class:`repro.netlist.logic_text.RawNetlist`)
so that defective netlists — exactly the inputs this pass exists for —
can be analysed at all: the validated :class:`LogicNetlist` constructor
rejects them on sight.  A validated netlist can also be checked
(:func:`check_logic_netlist`), where only the non-fatal findings
(unused inputs, dangling outputs) remain possible.
"""

from __future__ import annotations

from repro.logic.netlist import LogicNetlist
from repro.netlist.logic_text import RawGate, RawNetlist
from repro.lint.diagnostics import Diagnostic, diag


def _loop_gates(gates: list[RawGate]) -> list[str] | None:
    """Nets on one combinational cycle, or ``None`` if the graph is a DAG.

    Iterative grey/black depth-first search over the net dependency
    graph (``output`` depends on each ``input``), so deep benchmark
    netlists cannot overflow the interpreter stack.
    """
    driver: dict[str, RawGate] = {}
    for gate in gates:
        driver.setdefault(gate.output, gate)

    WHITE, GREY, BLACK = 0, 1, 2
    state: dict[str, int] = {}

    for root in driver:
        if state.get(root, WHITE) != WHITE:
            continue
        trail: list[str] = []
        stack: list[tuple[str, bool]] = [(root, False)]
        while stack:
            net, done = stack.pop()
            if done:
                state[net] = BLACK
                trail.pop()
                continue
            colour = state.get(net, WHITE)
            if colour == GREY:
                return trail[trail.index(net):]
            if colour == BLACK:
                continue
            state[net] = GREY
            trail.append(net)
            stack.append((net, True))
            gate = driver.get(net)
            if gate is not None:
                for upstream in gate.inputs:
                    if state.get(upstream, WHITE) != BLACK:
                        stack.append((upstream, False))
    return None


def check_logic_raw(raw: RawNetlist) -> list[Diagnostic]:
    """Connectivity checks on a tokenised (unvalidated) netlist."""
    out: list[Diagnostic] = []
    inputs = set(raw.inputs)

    drivers: dict[str, RawGate] = {}
    for gate in raw.gates:
        previous = drivers.get(gate.output)
        if previous is not None:
            out.append(diag(
                "SEM053",
                f"net {gate.output!r} is driven by both {previous.name!r} "
                f"(line {previous.line}) and {gate.name!r}",
                where=f"gate {gate.name!r}",
                line=gate.line,
            ))
        elif gate.output in inputs:
            out.append(diag(
                "SEM053",
                f"net {gate.output!r} is a primary input but is also driven "
                f"by gate {gate.name!r}",
                where=f"gate {gate.name!r}",
                line=gate.line,
            ))
        else:
            drivers[gate.output] = gate

    driven = inputs | set(drivers)
    read: set[str] = set()
    for gate in raw.gates:
        if gate.output in gate.inputs:
            out.append(diag(
                "SEM056",
                f"gate {gate.name!r} feeds its output {gate.output!r} back "
                "into its own input",
                where=f"gate {gate.name!r}",
                line=gate.line,
            ))
        for net in gate.inputs:
            read.add(net)
            if net not in driven:
                out.append(diag(
                    "SEM050",
                    f"gate {gate.name!r} reads net {net!r}, which is neither "
                    "a primary input nor any gate's output",
                    where=f"net {net!r}",
                    line=gate.line,
                ))

    for net in raw.outputs:
        if net not in driven:
            out.append(diag(
                "SEM051",
                f"primary output {net!r} is not driven by any gate or input",
                where=f"net {net!r}",
                line=raw.output_lines.get(net),
            ))

    outputs = set(raw.outputs)
    for net in raw.inputs:
        if net not in read and net not in outputs:
            out.append(diag(
                "SEM054",
                f"primary input {net!r} is never read by any gate",
                where=f"net {net!r}",
                line=raw.input_lines.get(net),
            ))
    for gate in raw.gates:
        if gate.output not in read and gate.output not in outputs \
                and drivers.get(gate.output) is gate:
            out.append(diag(
                "SEM055",
                f"output {gate.output!r} of gate {gate.name!r} drives no "
                "gate and is not a primary output",
                where=f"gate {gate.name!r}",
                line=gate.line,
            ))

    cycle = _loop_gates(raw.gates)
    if cycle is not None:
        path = " -> ".join(cycle[:8])
        out.append(diag(
            "SEM052",
            f"combinational loop through nets {path}",
        ))
    return out


def check_logic_netlist(netlist: LogicNetlist) -> list[Diagnostic]:
    """Checks that remain meaningful on an already-validated netlist."""
    out: list[Diagnostic] = []
    read: set[str] = set()
    for gate in netlist.gates:
        read.update(gate.inputs)
    outputs = set(netlist.outputs)
    for net in netlist.inputs:
        if net not in read and net not in outputs:
            out.append(diag(
                "SEM054",
                f"primary input {net!r} is never read by any gate",
                where=f"net {net!r}",
            ))
    for gate in netlist.gates:
        if gate.output not in read and gate.output not in outputs:
            out.append(diag(
                "SEM055",
                f"output {gate.output!r} of gate {gate.name!r} drives no "
                "gate and is not a primary output",
                where=f"gate {gate.name!r}",
            ))
    return out
