"""Pre-simulation static analysis of circuits, decks and logic netlists.

``repro.lint`` inspects an input **without running any Monte Carlo**
and reports structured :class:`Diagnostic` records with stable
``SEM0xx`` codes — the production gate that keeps malformed or
physically out-of-regime inputs from silently burning a simulation:

* **topology** — floating islands (singular capacitance matrix),
  junction-less islands, lead-lead junctions, decoupled subcircuits;
* **numerical conditioning** — condition-number estimate of the island
  capacitance matrix, unit-scale heuristics, dense/sparse advisory;
* **physics regime** — ``R_T`` vs ``R_K``, ``E_C`` vs ``k_B T``,
  superconducting parameter coherence (Sec. III-A validity limits);
* **simulation config** — sweep resolution vs blockade width, adaptive
  threshold and refresh-period sanity;
* **logic netlists** — undriven nets, dangling outputs, multiple
  drivers, combinational loops.

Entry points: :func:`lint_circuit`, :func:`lint_deck`,
:func:`lint_text` (format-sniffing), :func:`lint_path`, and the CLI
``python -m repro lint``.  Strict-mode hooks
(``parse_semsim(..., strict=True)``, ``deck.build_circuit(strict=True)``)
raise :class:`repro.errors.LintError` on error-severity findings.
"""

from __future__ import annotations

import os

from repro.circuit.circuit import Circuit
from repro.core.config import SimulationConfig
from repro.errors import LintError, NetlistError
from repro.lint.conditioning import check_conditioning
from repro.lint.deck import check_deck
from repro.lint.diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    LintReport,
    Severity,
    diag,
)
from repro.lint.logic import check_logic_netlist, check_logic_raw
from repro.lint.physics import charging_energies, check_physics
from repro.lint.simconfig import check_config, check_jumps, check_sweep
from repro.lint.topology import check_topology
from repro.logic.netlist import GateKind, LogicNetlist
from repro.netlist.logic_text import scan_logic
from repro.netlist.semsim import SemsimDeck, parse_semsim

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "LintReport",
    "Severity",
    "charging_energies",
    "check_conditioning",
    "check_config",
    "check_deck",
    "check_jumps",
    "check_logic_netlist",
    "check_logic_raw",
    "check_physics",
    "check_sweep",
    "check_topology",
    "diag",
    "lint_benchmark",
    "lint_circuit",
    "lint_deck",
    "lint_logic_netlist",
    "lint_path",
    "lint_text",
    "require_clean_deck",
    "sniff_format",
]


# ----------------------------------------------------------------------
# object-level entry points
# ----------------------------------------------------------------------
def lint_circuit(
    circuit: Circuit,
    temperature: float = 4.2,
    config: SimulationConfig | None = None,
    *,
    cotunneling: bool = False,
) -> LintReport:
    """Static analysis of a frozen :class:`Circuit`."""
    diagnostics = check_topology(circuit)
    singular = any(d.code == "SEM010" for d in diagnostics)
    diagnostics += check_conditioning(circuit, skip_condition_number=singular)
    diagnostics += check_physics(circuit, temperature, cotunneling=cotunneling)
    if config is not None:
        diagnostics += check_config(config)
    return LintReport(tuple(diagnostics), subject="circuit")


def lint_deck(deck: SemsimDeck, subject: str = "deck") -> LintReport:
    """Static analysis of a parsed SEMSIM deck (never raises)."""
    return LintReport(tuple(check_deck(deck)), subject=subject)


def lint_logic_netlist(netlist: LogicNetlist) -> LintReport:
    """Static analysis of a validated logic netlist."""
    return LintReport(tuple(check_logic_netlist(netlist)), subject=netlist.name)


def lint_benchmark(name: str) -> LintReport:
    """Static analysis of one of the paper's 15 logic benchmarks."""
    from repro.logic import benchmark_by_name

    spec = benchmark_by_name(name)
    return lint_logic_netlist(spec.builder())


# ----------------------------------------------------------------------
# text-level entry points
# ----------------------------------------------------------------------
_GATE_KEYWORDS = frozenset(kind.value for kind in GateKind) | {
    "name", "input", "output",
}
_DECK_KEYWORDS = frozenset({
    "junc", "cap", "charge", "vdc", "symm", "super", "num", "temp",
    "cotunnel", "record", "jumps", "sweep",
})


def sniff_format(text: str) -> str:
    """Guess whether text is a SEMSIM deck or a logic netlist.

    Counts recognised directive keywords of both formats over the
    non-comment lines; the majority wins, decks on a tie (``cap`` is
    deck-only, ``name``/gate kinds are logic-only, so real files are
    never close).
    """
    deck_votes = logic_votes = 0
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        keyword = line.split()[0].lower()
        if keyword in _DECK_KEYWORDS:
            deck_votes += 1
        if keyword in _GATE_KEYWORDS:
            logic_votes += 1
    return "logic" if logic_votes > deck_votes else "deck"


def lint_text(text: str, fmt: str = "auto", subject: str = "input") -> LintReport:
    """Static analysis of deck or netlist text; never raises.

    ``fmt`` is ``"deck"``, ``"logic"`` or ``"auto"`` (sniffed).
    Unparseable input yields a ``SEM001`` diagnostic instead of an
    exception.
    """
    if fmt == "auto":
        fmt = sniff_format(text)
    if fmt == "deck":
        try:
            deck = parse_semsim(text, validate=False)
        except NetlistError as exc:
            return LintReport(
                (diag("SEM001", str(exc), line=exc.line_number),),
                subject=subject,
            )
        return lint_deck(deck, subject=subject)
    if fmt == "logic":
        try:
            raw = scan_logic(text)
        except NetlistError as exc:
            return LintReport(
                (diag("SEM001", str(exc), line=exc.line_number),),
                subject=subject,
            )
        return LintReport(tuple(check_logic_raw(raw)), subject=subject)
    raise NetlistError(f"unknown lint format {fmt!r} (use deck, logic or auto)")


def lint_path(path: str | os.PathLike, fmt: str = "auto") -> LintReport:
    """Static analysis of a deck/netlist file; IO errors propagate."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return lint_text(text, fmt=fmt, subject=str(path))


# ----------------------------------------------------------------------
# strict-mode gate
# ----------------------------------------------------------------------
def require_clean_deck(deck: SemsimDeck) -> LintReport:
    """Raise :class:`LintError` if the deck has error-severity findings.

    Backs the ``strict=True`` hooks of :func:`repro.netlist.parse_semsim`
    and :meth:`SemsimDeck.build_circuit`; returns the report otherwise
    so callers can still surface warnings.
    """
    report = lint_deck(deck)
    errors = report.errors
    if errors:
        detail = "; ".join(d.format() for d in errors[:3])
        if len(errors) > 3:
            detail += f"; and {len(errors) - 3} more"
        raise LintError(
            f"deck failed static analysis with {len(errors)} error(s): {detail}",
            diagnostics=errors,
        )
    return report
